#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "data/group_model.h"
#include "data/military_gen.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

GroupDataset TestStream(uint64_t seed = 71) {
  GroupModelOptions options;
  options.num_objects = 110;
  options.num_snapshots = 36;
  options.area_size = 1800.0;
  options.min_group_size = 7;
  options.max_group_size = 14;
  options.split_probability = 0.01;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams TestParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 20.0;
  params.cluster.mu = 4;
  params.size_threshold = 6;
  params.duration_threshold = 9;
  return params;
}

std::set<ObjectSet> Reported(const CompanionDiscoverer& d) {
  std::set<ObjectSet> out;
  for (const Companion& c : d.log().companions()) out.insert(c.objects);
  return out;
}

/// The defining property: save mid-stream, restore into a fresh instance,
/// finish the stream — identical companions and identical deterministic
/// counters to an uninterrupted run.
class CheckpointResumeTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CheckpointResumeTest, ResumeEqualsUninterruptedRun) {
  GroupDataset data = TestStream();
  DiscoveryParams params = TestParams();
  const size_t cut = data.stream.size() / 2;

  // Uninterrupted reference run.
  auto reference = MakeDiscoverer(GetParam(), params);
  for (const Snapshot& s : data.stream) {
    reference->ProcessSnapshot(s, nullptr);
  }

  // Interrupted run: first half, checkpoint, restore, second half.
  auto first = MakeDiscoverer(GetParam(), params);
  for (size_t t = 0; t < cut; ++t) {
    first->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveDiscoverer(*first, buffer).ok());

  auto resumed = MakeDiscoverer(GetParam(), params);
  ASSERT_TRUE(LoadDiscoverer(resumed.get(), buffer).ok());
  for (size_t t = cut; t < data.stream.size(); ++t) {
    resumed->ProcessSnapshot(data.stream[t], nullptr);
  }

  EXPECT_EQ(Reported(*resumed), Reported(*reference));
  EXPECT_EQ(resumed->stats().intersections,
            reference->stats().intersections);
  EXPECT_EQ(resumed->stats().companions_reported,
            reference->stats().companions_reported);
  EXPECT_EQ(resumed->stats().candidate_objects_peak,
            reference->stats().candidate_objects_peak);
  EXPECT_EQ(resumed->stats().snapshots, reference->stats().snapshots);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CheckpointResumeTest,
    ::testing::Values(Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return AlgorithmName(info.param);
    });

TEST(CheckpointTest, RoundTripPreservesLogDetails) {
  MilitaryOptions options;
  options.num_units = 100;
  options.num_teams = 4;
  options.num_snapshots = 30;
  MilitaryDataset md = GenerateMilitary(options);

  DiscoveryParams params = TestParams();
  params.cluster.epsilon = 24.0;
  params.cluster.mu = 5;
  auto original = MakeDiscoverer(Algorithm::kBuddy, params);
  for (const Snapshot& s : md.stream) {
    original->ProcessSnapshot(s, nullptr);
  }
  ASSERT_GT(original->log().size(), 0u);

  std::stringstream buffer;
  ASSERT_TRUE(SaveDiscoverer(*original, buffer).ok());
  auto restored = MakeDiscoverer(Algorithm::kBuddy, params);
  ASSERT_TRUE(LoadDiscoverer(restored.get(), buffer).ok());

  const auto& a = original->log().companions();
  const auto& b = restored->log().companions();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objects, b[i].objects);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].snapshot_index, b[i].snapshot_index);
  }
}

TEST(CheckpointTest, AlgorithmMismatchRejected) {
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  std::stringstream buffer;
  ASSERT_TRUE(SaveDiscoverer(*sc, buffer).ok());
  auto bu = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  Status s = LoadDiscoverer(bu.get(), buffer);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, CorruptHeaderRejected) {
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  std::stringstream bad("not-a-checkpoint 1 SC\n");
  EXPECT_EQ(LoadDiscoverer(sc.get(), bad).code(),
            StatusCode::kCorruption);
  std::stringstream empty;
  EXPECT_EQ(LoadDiscoverer(sc.get(), empty).code(),
            StatusCode::kCorruption);
  std::stringstream version("tcomp-checkpoint 99 SC\n");
  EXPECT_EQ(LoadDiscoverer(sc.get(), version).code(),
            StatusCode::kCorruption);
}

TEST(CheckpointTest, TruncatedBodyRejected) {
  GroupDataset data = TestStream();
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  for (size_t t = 0; t < 12; ++t) {
    sc->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveDiscoverer(*sc, buffer).ok());
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  auto fresh = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  EXPECT_FALSE(LoadDiscoverer(fresh.get(), truncated).ok());
}

TEST(CheckpointTest, FileRoundTrip) {
  GroupDataset data = TestStream();
  auto bu = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  for (size_t t = 0; t < 15; ++t) {
    bu->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::string path = ::testing::TempDir() + "/state.ckpt";
  ASSERT_TRUE(SaveDiscovererToFile(*bu, path).ok());
  auto restored = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  ASSERT_TRUE(LoadDiscovererFromFile(restored.get(), path).ok());
  EXPECT_EQ(Reported(*restored), Reported(*bu));
  EXPECT_FALSE(
      LoadDiscovererFromFile(restored.get(), "/no/such/file").ok());
}

/// A writer that crashed mid-save leaves a partial .tmp sibling; the
/// checkpoint at `path` must stay loadable, and the next successful save
/// must replace the junk.
TEST(CheckpointTest, AtomicSaveSurvivesCrashedWriter) {
  GroupDataset data = TestStream();
  auto bu = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  for (size_t t = 0; t < 12; ++t) {
    bu->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::string path = ::testing::TempDir() + "/crashed.ckpt";
  ASSERT_TRUE(SaveDiscovererToFile(*bu, path).ok());

  // Simulate a crash: a truncated garbage .tmp next to the good file.
  {
    std::ofstream junk(path + ".tmp");
    junk << "tcomp-checkpoint 1 BU\ncommon 3\nsta";
  }
  auto restored = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  ASSERT_TRUE(LoadDiscovererFromFile(restored.get(), path).ok());
  EXPECT_EQ(Reported(*restored), Reported(*bu));

  // The next save overwrites the junk and renames it away.
  ASSERT_TRUE(SaveDiscovererToFile(*bu, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ASSERT_TRUE(LoadDiscovererFromFile(restored.get(), path).ok());
}

/// A save that cannot even open its temporary must fail without touching
/// the existing checkpoint.
TEST(CheckpointTest, FailedSaveLeavesPreviousCheckpointIntact) {
  GroupDataset data = TestStream();
  auto bu = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  for (size_t t = 0; t < 12; ++t) {
    bu->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::string path = ::testing::TempDir() + "/blocked.ckpt";
  ASSERT_TRUE(SaveDiscovererToFile(*bu, path).ok());

  // A directory squatting on the .tmp name makes the open fail.
  ASSERT_TRUE(std::filesystem::create_directory(path + ".tmp"));
  for (size_t t = 12; t < 16; ++t) {
    bu->ProcessSnapshot(data.stream[t], nullptr);
  }
  EXPECT_FALSE(SaveDiscovererToFile(*bu, path).ok());

  // The earlier checkpoint is untouched and still loads.
  auto restored = MakeDiscoverer(Algorithm::kBuddy, TestParams());
  EXPECT_TRUE(LoadDiscovererFromFile(restored.get(), path).ok());
  std::filesystem::remove(path + ".tmp");
}

/// Implausibly large counts in a tampered checkpoint must be rejected as
/// corruption instead of fed to `resize` (a multi-GB allocation).
TEST(CheckpointTest, ImplausibleLogCountRejected) {
  GroupDataset data = TestStream();
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  for (size_t t = 0; t < 12; ++t) {
    sc->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveDiscoverer(*sc, buffer).ok());
  std::string text = buffer.str();
  size_t at = text.find("\nlog ");
  ASSERT_NE(at, std::string::npos);
  size_t num = at + 5;
  size_t end = text.find('\n', num);
  text.replace(num, end - num, "123456789012");

  std::stringstream tampered(text);
  auto fresh = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  Status s = LoadDiscoverer(fresh.get(), tampered);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, ImplausibleCompanionSizeRejected) {
  // Handcrafted checkpoint whose single log entry claims 2^40 members.
  std::stringstream bad(
      "tcomp-checkpoint 1 SC\n"
      "common 3\n"
      "stats 3 0 0 0 0 1 0 0 0 0 0 0 0 0\n"
      "log 1\n"
      "2 7 1099511627776 1 2 3\n"
      "end\n");
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, TestParams());
  EXPECT_EQ(LoadDiscoverer(sc.get(), bad).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tcomp
