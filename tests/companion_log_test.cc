#include <gtest/gtest.h>

#include "core/candidate.h"

namespace tcomp {
namespace {

TEST(ClosedLogTest, SupersetSuppressesLaterSubset) {
  CompanionLog log(/*closed_mode=*/true);
  EXPECT_TRUE(log.Report({1, 2, 3, 4}, 10.0, 0));
  // Subset with shorter-or-equal duration is dominated.
  EXPECT_FALSE(log.Report({1, 2, 3}, 10.0, 1));
  EXPECT_FALSE(log.Report({2, 3, 4}, 5.0, 1));
  EXPECT_EQ(log.size(), 1u);
}

TEST(ClosedLogTest, LongerLivedSubsetSurvives) {
  // Definition 5: a subset with *longer* duration is its own closed
  // companion (a smaller group that traveled longer).
  CompanionLog log(true);
  EXPECT_TRUE(log.Report({1, 2, 3, 4}, 10.0, 0));
  EXPECT_TRUE(log.Report({1, 2, 3}, 20.0, 1));
  EXPECT_EQ(log.size(), 2u);
}

TEST(ClosedLogTest, SupersetEvictsEarlierSubsets) {
  CompanionLog log(true);
  EXPECT_TRUE(log.Report({1, 2, 3}, 10.0, 0));
  EXPECT_TRUE(log.Report({4, 5, 6}, 10.0, 0));
  EXPECT_TRUE(log.Report({1, 2, 3, 4, 5, 6}, 10.0, 1));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.companions()[0].objects,
            (ObjectSet{1, 2, 3, 4, 5, 6}));
}

TEST(ClosedLogTest, EvictionRespectsDuration) {
  CompanionLog log(true);
  EXPECT_TRUE(log.Report({1, 2, 3}, 30.0, 0));
  // Superset with shorter duration does not dominate the longer subset.
  EXPECT_TRUE(log.Report({1, 2, 3, 4}, 10.0, 1));
  EXPECT_EQ(log.size(), 2u);
}

TEST(ClosedLogTest, DisjointSetsUnaffected) {
  CompanionLog log(true);
  EXPECT_TRUE(log.Report({1, 2}, 5.0, 0));
  EXPECT_TRUE(log.Report({3, 4}, 5.0, 0));
  EXPECT_TRUE(log.Report({5, 6}, 5.0, 1));
  EXPECT_EQ(log.size(), 3u);
}

TEST(ClosedLogTest, ReReportUpdatesDurationAndView) {
  CompanionLog log(true);
  log.Report({1, 2, 3}, 5.0, 0);
  EXPECT_DOUBLE_EQ(log.companions()[0].duration, 5.0);
  log.Report({1, 2, 3}, 9.0, 3);  // same set, longer duration
  ASSERT_EQ(log.companions().size(), 1u);
  EXPECT_DOUBLE_EQ(log.companions()[0].duration, 9.0);
}

TEST(ClosedLogTest, RawModeKeepsEverything) {
  CompanionLog log(/*closed_mode=*/false);
  EXPECT_TRUE(log.Report({1, 2, 3, 4}, 10.0, 0));
  EXPECT_TRUE(log.Report({1, 2, 3}, 10.0, 1));  // CI's failure mode
  EXPECT_EQ(log.size(), 2u);
}

TEST(ClosedLogTest, MaterializedViewSkipsTombstones) {
  CompanionLog log(true);
  log.Report({1, 2}, 5.0, 0);
  log.Report({7, 8}, 5.0, 0);
  log.Report({1, 2, 3}, 5.0, 1);  // evicts {1,2}
  const std::vector<Companion>& view = log.companions();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0].objects, (ObjectSet{7, 8}));
  EXPECT_EQ(view[1].objects, (ObjectSet{1, 2, 3}));
}

TEST(ClosedLogTest, ClearResets) {
  CompanionLog log(true);
  log.Report({1, 2}, 5.0, 0);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.companions().empty());
  EXPECT_TRUE(log.Report({1, 2}, 5.0, 0));
}

}  // namespace
}  // namespace tcomp
