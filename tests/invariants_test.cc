#include <gtest/gtest.h>

#include <set>

#include "core/discoverer.h"
#include "data/group_model.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

/// Oracle soundness check for the problem definition (Definition 3):
/// every reported companion must (a) have size ≥ δs and (b) have all its
/// members sharing one density cluster in each of the δt consecutive
/// snapshots ending at its report snapshot. Verified against an
/// independent clustering of every snapshot.
class SoundnessTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SoundnessTest, ReportedCompanionsSatisfyDefinition3) {
  GroupModelOptions options;
  options.num_objects = 150;
  options.num_snapshots = 45;
  options.area_size = 2500.0;
  options.min_group_size = 8;
  options.max_group_size = 16;
  options.split_probability = 0.01;
  options.leave_probability = 0.005;
  options.seed = 404;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 20.0;
  params.cluster.mu = 4;
  params.size_threshold = 6;
  params.duration_threshold = 8;  // unit snapshot durations

  // Independent per-snapshot clusterings for the oracle.
  std::vector<Clustering> clusterings;
  clusterings.reserve(data.stream.size());
  for (const Snapshot& s : data.stream) {
    clusterings.push_back(DbscanGrid(s, params.cluster));
  }

  auto discoverer = MakeDiscoverer(GetParam(), params);
  for (const Snapshot& s : data.stream) {
    discoverer->ProcessSnapshot(s, nullptr);
  }
  ASSERT_GT(discoverer->log().size(), 0u) << "test needs companions";

  const int delta_t = static_cast<int>(params.duration_threshold);
  for (const Companion& c : discoverer->log().companions()) {
    EXPECT_GE(c.objects.size(),
              static_cast<size_t>(params.size_threshold));
    int64_t first = c.snapshot_index - delta_t + 1;
    ASSERT_GE(first, 0);
    for (int64_t t = first; t <= c.snapshot_index; ++t) {
      const Snapshot& snap = data.stream[static_cast<size_t>(t)];
      const Clustering& clustering = clusterings[static_cast<size_t>(t)];
      std::set<int32_t> labels;
      for (ObjectId o : c.objects) {
        size_t idx = snap.IndexOf(o);
        ASSERT_NE(idx, Snapshot::kNpos)
            << "companion member absent from snapshot " << t;
        labels.insert(clustering.labels[idx]);
      }
      EXPECT_EQ(labels.size(), 1u)
          << "members split across clusters at snapshot " << t;
      EXPECT_GE(*labels.begin(), 0)
          << "members unclustered at snapshot " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SoundnessTest,
    ::testing::Values(Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return AlgorithmName(info.param);
    });

/// Completeness oracle: a group that provably stays in one cluster for
/// the whole stream must be reported (possibly inside a superset).
TEST(CompletenessTest, StableGroupIsAlwaysFound) {
  // Deterministic stream: one tight group of 9 orbits the area; 20 noise
  // objects wander far away.
  SnapshotStream stream;
  Pcg32 rng(12);
  for (int t = 0; t < 30; ++t) {
    std::vector<ObjectPosition> pos;
    Point center{500.0 + 10.0 * t, 300.0 + 5.0 * t};
    for (ObjectId o = 0; o < 9; ++o) {
      pos.push_back(ObjectPosition{
          o, Point{center.x + (o % 3) * 4.0, center.y + (o / 3) * 4.0}});
    }
    for (ObjectId o = 9; o < 29; ++o) {
      pos.push_back(ObjectPosition{
          o, Point{5000.0 + rng.NextDouble(0, 4000),
                   5000.0 + rng.NextDouble(0, 4000)}});
    }
    stream.push_back(Snapshot(std::move(pos), 1.0));
  }

  DiscoveryParams params;
  params.cluster.epsilon = 10.0;
  params.cluster.mu = 4;
  params.size_threshold = 9;
  params.duration_threshold = 10;

  for (Algorithm a : {Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy}) {
    auto discoverer = MakeDiscoverer(a, params);
    for (const Snapshot& s : stream) discoverer->ProcessSnapshot(s, nullptr);
    bool found = false;
    ObjectSet group{0, 1, 2, 3, 4, 5, 6, 7, 8};
    for (const Companion& c : discoverer->log().companions()) {
      if (std::includes(c.objects.begin(), c.objects.end(), group.begin(),
                        group.end())) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << AlgorithmName(a);
  }
}

/// Determinism: identical streams and parameters give byte-identical
/// outputs and cost counters, for every algorithm.
TEST(DeterminismTest, RepeatRunsAreIdentical) {
  GroupModelOptions options;
  options.num_objects = 100;
  options.num_snapshots = 25;
  options.area_size = 1800.0;
  options.seed = 55;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 20.0;
  params.cluster.mu = 4;
  params.size_threshold = 8;
  params.duration_threshold = 8;

  for (Algorithm a : {Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy}) {
    auto d1 = MakeDiscoverer(a, params);
    auto d2 = MakeDiscoverer(a, params);
    for (const Snapshot& s : data.stream) {
      d1->ProcessSnapshot(s, nullptr);
      d2->ProcessSnapshot(s, nullptr);
    }
    ASSERT_EQ(d1->log().size(), d2->log().size()) << AlgorithmName(a);
    for (size_t i = 0; i < d1->log().companions().size(); ++i) {
      EXPECT_EQ(d1->log().companions()[i].objects,
                d2->log().companions()[i].objects);
    }
    EXPECT_EQ(d1->stats().intersections, d2->stats().intersections);
    EXPECT_EQ(d1->stats().distance_ops, d2->stats().distance_ops);
    EXPECT_EQ(d1->stats().candidate_objects_peak,
              d2->stats().candidate_objects_peak);
  }
}

}  // namespace
}  // namespace tcomp
