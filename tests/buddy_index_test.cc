#include "core/buddy_index.h"

#include <gtest/gtest.h>

namespace tcomp {
namespace {

/// Fixed object→buddy oracle for the algebra tests.
BuddyOfFn OracleFrom(std::vector<std::pair<ObjectId, BuddyId>> pairs) {
  return [pairs = std::move(pairs)](ObjectId o) -> BuddyId {
    for (const auto& [oid, bid] : pairs) {
      if (oid == o) return bid;
    }
    return kNoLiveBuddy;
  };
}

TEST(BuddyIndexTest, RegisterAndExpand) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(2, {20});
  EXPECT_TRUE(index.Contains(1));
  EXPECT_FALSE(index.Contains(3));
  EXPECT_EQ(index.stored_objects(), 3);

  AtomSet set;
  set.buddy_ids = {1, 2};
  set.objects = {5};
  EXPECT_EQ(index.Expand(set), (ObjectSet{5, 10, 11, 20}));
}

TEST(BuddyIndexTest, ReRegisterReplacesMembership) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(1, {10, 11, 12});
  EXPECT_EQ(index.stored_objects(), 3);
  EXPECT_EQ(index.MembersOf(1), (ObjectSet{10, 11, 12}));
}

TEST(BuddyIndexTest, ExpandRetiredReplacesTokens) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(2, {20, 21});
  AtomSet set;
  set.buddy_ids = {1, 2};
  set.objects = {5};
  set.size = 5;
  index.ExpandRetired({1}, &set);
  EXPECT_EQ(set.buddy_ids, (std::vector<BuddyId>{2}));
  EXPECT_EQ(set.objects, (ObjectSet{5, 10, 11}));
  EXPECT_EQ(set.size, 5u);  // object count is unchanged by expansion
}

TEST(BuddyIndexTest, PruneExceptDropsUnreferenced) {
  BuddyIndex index;
  index.Register(1, {10});
  index.Register(2, {20});
  index.Register(3, {30, 31});
  index.PruneExcept({2});
  EXPECT_FALSE(index.Contains(1));
  EXPECT_TRUE(index.Contains(2));
  EXPECT_FALSE(index.Contains(3));
  EXPECT_EQ(index.stored_objects(), 1);
}

TEST(AtomIntersectTest, SharedBuddyTokensMatchWhole) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(2, {20, 21});
  auto oracle = OracleFrom({{10, 1}, {11, 1}, {20, 2}, {21, 2}});

  AtomSet r;
  r.buddy_ids = {1, 2};
  r.size = 4;
  AtomSet c;
  c.buddy_ids = {1};
  c.size = 2;

  AtomIntersection out = IntersectAtomSets(r, c, index, oracle);
  EXPECT_EQ(out.result.buddy_ids, (std::vector<BuddyId>{1}));
  EXPECT_TRUE(out.result.objects.empty());
  EXPECT_EQ(out.result.size, 2u);
  EXPECT_EQ(out.remaining.buddy_ids, (std::vector<BuddyId>{2}));
  EXPECT_EQ(out.remaining.size, 2u);
}

TEST(AtomIntersectTest, StraddlingBuddyDissolves) {
  // Candidate holds buddy 1 = {10,11,12}; the cluster contains only 10,11
  // as loose objects (the buddy straddles the cluster boundary).
  BuddyIndex index;
  index.Register(1, {10, 11, 12});
  auto oracle = OracleFrom({{10, 1}, {11, 1}, {12, 1}});

  AtomSet r;
  r.buddy_ids = {1};
  r.size = 3;
  AtomSet c;
  c.objects = {10, 11};
  c.size = 2;

  AtomIntersection out = IntersectAtomSets(r, c, index, oracle);
  EXPECT_TRUE(out.result.buddy_ids.empty());
  EXPECT_EQ(out.result.objects, (ObjectSet{10, 11}));
  EXPECT_EQ(out.result.size, 2u);
  // The unmatched member stays behind as a loose object.
  EXPECT_EQ(out.remaining.objects, (ObjectSet{12}));
  EXPECT_EQ(out.remaining.size, 1u);
}

TEST(AtomIntersectTest, LooseObjectInsideClusterToken) {
  // Candidate has loose object 10 whose live buddy 1 is wholly inside the
  // cluster (stored there as a token).
  BuddyIndex index;
  index.Register(1, {10, 11});
  auto oracle = OracleFrom({{10, 1}, {11, 1}});

  AtomSet r;
  r.objects = {10, 99};
  r.size = 2;
  AtomSet c;
  c.buddy_ids = {1};
  c.size = 2;

  AtomIntersection out = IntersectAtomSets(r, c, index, oracle);
  EXPECT_EQ(out.result.objects, (ObjectSet{10}));
  EXPECT_EQ(out.remaining.objects, (ObjectSet{99}));
}

TEST(AtomIntersectTest, DisjointPairFastPath) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(2, {20, 21});
  auto oracle = OracleFrom({{10, 1}, {11, 1}, {20, 2}, {21, 2}});
  AtomSet r;
  r.buddy_ids = {1};
  r.objects = {5};
  r.size = 3;
  AtomSet c;
  c.buddy_ids = {2};
  c.objects = {6};
  c.size = 3;
  AtomIntersection out = IntersectAtomSets(r, c, index, oracle);
  EXPECT_FALSE(out.any_overlap);
  EXPECT_TRUE(out.result.buddy_ids.empty());
  EXPECT_TRUE(out.result.objects.empty());
  EXPECT_TRUE(out.remaining.buddy_ids.empty());  // caller keeps its set
}

TEST(AtomIntersectTest, LooseObjectsMatchLooseObjects) {
  BuddyIndex index;
  auto oracle = OracleFrom({});
  AtomSet r;
  r.objects = {1, 2, 3};
  r.size = 3;
  AtomSet c;
  c.objects = {2, 3, 4};
  c.size = 3;
  AtomIntersection out = IntersectAtomSets(r, c, index, oracle);
  EXPECT_EQ(out.result.objects, (ObjectSet{2, 3}));
  EXPECT_EQ(out.remaining.objects, (ObjectSet{1}));
}

TEST(AtomSubsetTest, TokenAndLooseCombinations) {
  BuddyIndex index;
  index.Register(1, {10, 11});
  index.Register(2, {20, 21});
  auto oracle = OracleFrom({{10, 1}, {11, 1}, {20, 2}, {21, 2}});

  AtomSet inner;
  inner.buddy_ids = {1};
  inner.size = 2;

  AtomSet outer_token;
  outer_token.buddy_ids = {1, 2};
  outer_token.size = 4;
  EXPECT_TRUE(AtomSetIsSubset(inner, outer_token, index, oracle));

  AtomSet outer_loose;
  outer_loose.objects = {10, 11, 30};
  outer_loose.size = 3;
  EXPECT_TRUE(AtomSetIsSubset(inner, outer_loose, index, oracle));

  AtomSet outer_partial;
  outer_partial.objects = {10};
  outer_partial.size = 1;
  EXPECT_FALSE(AtomSetIsSubset(inner, outer_partial, index, oracle));

  // Loose inner object covered by an outer token.
  AtomSet inner_loose;
  inner_loose.objects = {20};
  inner_loose.size = 1;
  EXPECT_TRUE(AtomSetIsSubset(inner_loose, outer_token, index, oracle));
  AtomSet inner_miss;
  inner_miss.objects = {40};
  inner_miss.size = 1;
  EXPECT_FALSE(AtomSetIsSubset(inner_miss, outer_token, index, oracle));
}

}  // namespace
}  // namespace tcomp
