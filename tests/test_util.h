#ifndef TCOMP_TESTS_TEST_UTIL_H_
#define TCOMP_TESTS_TEST_UTIL_H_

#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/types.h"
#include "util/random.h"

namespace tcomp {
namespace testing_util {

/// RAII pin for the incremental-clustering kill switch. Tests that assert
/// *cost relations* between algorithms (e.g. "BU does less distance work
/// than SC's full re-clustering") pin the layer off so the assertion
/// keeps measuring what it was written to measure; tests that assert
/// *products* never need this — products are mode-independent.
class IncrementalClusteringGuard {
 public:
  explicit IncrementalClusteringGuard(bool enabled)
      : previous_(IncrementalClusteringEnabled()) {
    SetIncrementalClusteringEnabled(enabled);
  }
  ~IncrementalClusteringGuard() {
    SetIncrementalClusteringEnabled(previous_);
  }
  IncrementalClusteringGuard(const IncrementalClusteringGuard&) = delete;
  IncrementalClusteringGuard& operator=(const IncrementalClusteringGuard&) =
      delete;

 private:
  bool previous_;
};

/// A uniformly random snapshot of `n` objects in [0, extent)².
inline Snapshot RandomSnapshot(int n, double extent, Pcg32& rng,
                               double duration = 1.0) {
  std::vector<ObjectPosition> positions;
  positions.reserve(n);
  for (int i = 0; i < n; ++i) {
    positions.push_back(ObjectPosition{
        static_cast<ObjectId>(i),
        Point{rng.NextDouble(0.0, extent), rng.NextDouble(0.0, extent)}});
  }
  return Snapshot(std::move(positions), duration);
}

/// A clustered snapshot: `clusters` Gaussian blobs of `per_cluster`
/// objects (σ = spread) plus `noise` uniform objects.
inline Snapshot ClusteredSnapshot(int clusters, int per_cluster, int noise,
                                  double extent, double spread, Pcg32& rng,
                                  double duration = 1.0) {
  std::vector<ObjectPosition> positions;
  ObjectId next = 0;
  for (int c = 0; c < clusters; ++c) {
    Point center{rng.NextDouble(0.1 * extent, 0.9 * extent),
                 rng.NextDouble(0.1 * extent, 0.9 * extent)};
    for (int k = 0; k < per_cluster; ++k) {
      positions.push_back(ObjectPosition{
          next++, Point{center.x + spread * rng.NextGaussian(),
                        center.y + spread * rng.NextGaussian()}});
    }
  }
  for (int k = 0; k < noise; ++k) {
    positions.push_back(ObjectPosition{
        next++, Point{rng.NextDouble(0.0, extent),
                      rng.NextDouble(0.0, extent)}});
  }
  return Snapshot(std::move(positions), duration);
}

/// Builds a snapshot from explicit (id, x, y) triples.
inline Snapshot MakeSnapshot(
    const std::vector<std::tuple<ObjectId, double, double>>& items,
    double duration = 1.0) {
  std::vector<ObjectPosition> positions;
  positions.reserve(items.size());
  for (const auto& [id, x, y] : items) {
    positions.push_back(ObjectPosition{id, Point{x, y}});
  }
  return Snapshot(std::move(positions), duration);
}

}  // namespace testing_util
}  // namespace tcomp

#endif  // TCOMP_TESTS_TEST_UTIL_H_
