#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <set>

#include "core/dbscan.h"
#include "data/group_model.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;
using testing_util::RandomSnapshot;

std::vector<ObjectId> BruteSearch(const std::vector<ObjectPosition>& items,
                                  Point center, double radius) {
  std::vector<ObjectId> out;
  for (const ObjectPosition& it : items) {
    if (Distance(it.pos, center) <= radius) out.push_back(it.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectPosition> RandomItems(int n, double extent, Pcg32& rng) {
  std::vector<ObjectPosition> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(ObjectPosition{
        static_cast<ObjectId>(i),
        Point{rng.NextDouble(0, extent), rng.NextDouble(0, extent)}});
  }
  return items;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Search({0, 0}, 10).empty());
  EXPECT_FALSE(tree.Delete(1, {0, 0}));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, InsertAndSearchSmall) {
  RTree tree;
  tree.Insert(1, {0, 0});
  tree.Insert(2, {3, 4});
  tree.Insert(3, {10, 10});
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Search({0, 0}, 5.0), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(tree.Search({10, 10}, 0.5), (std::vector<ObjectId>{3}));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, InsertSplitsKeepInvariants) {
  Pcg32 rng(1);
  RTree tree(/*max_entries=*/4);
  std::vector<ObjectPosition> items = RandomItems(200, 100.0, rng);
  for (const ObjectPosition& it : items) {
    tree.Insert(it.id, it.pos);
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SearchMatchesBruteForce) {
  Pcg32 rng(2);
  std::vector<ObjectPosition> items = RandomItems(300, 50.0, rng);
  RTree tree(6);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  for (int round = 0; round < 100; ++round) {
    Point c{rng.NextDouble(0, 50), rng.NextDouble(0, 50)};
    double r = rng.NextDouble(0.5, 10.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(items, c, r));
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  Pcg32 rng(3);
  std::vector<ObjectPosition> items = RandomItems(500, 80.0, rng);
  RTree tree(8);
  tree.BulkLoad(items);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int round = 0; round < 100; ++round) {
    Point c{rng.NextDouble(0, 80), rng.NextDouble(0, 80)};
    double r = rng.NextDouble(0.5, 12.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(items, c, r));
  }
}

TEST(RTreeTest, DeleteRemovesAndCondenses) {
  Pcg32 rng(4);
  std::vector<ObjectPosition> items = RandomItems(150, 40.0, rng);
  RTree tree(4);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  // Delete every third item; verify searches against the survivors.
  std::vector<ObjectPosition> kept;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(tree.Delete(items[i].id, items[i].pos)) << i;
    } else {
      kept.push_back(items[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int round = 0; round < 60; ++round) {
    Point c{rng.NextDouble(0, 40), rng.NextDouble(0, 40)};
    double r = rng.NextDouble(1.0, 8.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(kept, c, r));
  }
  // Deleting a non-existent entry fails cleanly.
  EXPECT_FALSE(tree.Delete(9999, {1, 1}));
}

TEST(RTreeTest, DeleteEverything) {
  Pcg32 rng(5);
  std::vector<ObjectPosition> items = RandomItems(80, 30.0, rng);
  RTree tree(4);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  for (const ObjectPosition& it : items) {
    EXPECT_TRUE(tree.Delete(it.id, it.pos));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(tree.Search({15, 15}, 100).empty());
}

TEST(RTreeTest, UpdateMovesPoints) {
  Pcg32 rng(6);
  std::vector<ObjectPosition> items = RandomItems(120, 60.0, rng);
  RTree tree(6);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  // Drift everything and update incrementally.
  for (ObjectPosition& it : items) {
    Point to{it.pos.x + rng.NextDouble(-2, 2),
             it.pos.y + rng.NextDouble(-2, 2)};
    EXPECT_TRUE(tree.Update(it.id, it.pos, to));
    it.pos = to;
  }
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int round = 0; round < 60; ++round) {
    Point c{rng.NextDouble(0, 60), rng.NextDouble(0, 60)};
    double r = rng.NextDouble(1.0, 9.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(items, c, r));
  }
}

TEST(RTreeTest, DuplicatePositionsSupported) {
  RTree tree(4);
  for (ObjectId id = 0; id < 10; ++id) tree.Insert(id, {5.0, 5.0});
  EXPECT_EQ(tree.Search({5, 5}, 0.1).size(), 10u);
  EXPECT_TRUE(tree.Delete(4, {5.0, 5.0}));
  EXPECT_EQ(tree.Search({5, 5}, 0.1).size(), 9u);
  EXPECT_TRUE(tree.CheckInvariants());
}

class DbscanRtreeTest : public ::testing::TestWithParam<bool> {};

TEST_P(DbscanRtreeTest, MatchesPlainDbscanOverStream) {
  const bool incremental = GetParam();
  GroupModelOptions options;
  options.num_objects = 150;
  options.num_snapshots = 12;
  options.area_size = 2000.0;
  options.seed = 20;
  GroupDataset data = GenerateGroupStream(options);
  DbscanParams params{20.0, 4};

  RTree tree(8);
  const Snapshot* previous = nullptr;
  for (size_t t = 0; t < data.stream.size(); ++t) {
    Clustering got = DbscanRtree(data.stream[t], params, &tree,
                                 incremental ? previous : nullptr);
    Clustering want = Dbscan(data.stream[t], params);
    ASSERT_EQ(got.labels, want.labels) << "snapshot " << t;
    ASSERT_EQ(got.clusters, want.clusters) << "snapshot " << t;
    EXPECT_TRUE(tree.CheckInvariants()) << "snapshot " << t;
    previous = &data.stream[t];
  }
}

INSTANTIATE_TEST_SUITE_P(RebuildAndIncremental, DbscanRtreeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "incremental" : "rebuild";
                         });

TEST(RTreeTest, SearchVisitsFewNodesOnClusteredData) {
  Pcg32 rng(9);
  Snapshot s = ClusteredSnapshot(10, 30, 0, 2000.0, 2.0, rng);
  std::vector<ObjectPosition> items;
  for (size_t i = 0; i < s.size(); ++i) {
    items.push_back(ObjectPosition{s.id(i), s.pos(i)});
  }
  RTree tree(8);
  tree.BulkLoad(items);
  tree.ResetStats();
  for (size_t i = 0; i < s.size(); ++i) {
    tree.Search(s.pos(i), 5.0);
  }
  // Far below visiting every node for every query.
  double per_query = static_cast<double>(tree.nodes_visited()) /
                     static_cast<double>(s.size());
  EXPECT_LT(per_query, 20.0);
}

}  // namespace
}  // namespace tcomp
