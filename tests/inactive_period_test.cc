#include "stream/inactive_period.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

TEST(InactivePeriodTest, ZeroThresholdIsPassthrough) {
  InactivePeriodFiller filler(0);
  Snapshot s1 = MakeSnapshot({{1, 0, 0}, {2, 1, 1}});
  Snapshot s2 = MakeSnapshot({{1, 0, 0}});
  EXPECT_EQ(filler.Fill(s1).size(), 2u);
  EXPECT_EQ(filler.Fill(s2).size(), 1u);
}

TEST(InactivePeriodTest, CarriesForwardWithinThreshold) {
  InactivePeriodFiller filler(2);
  filler.Fill(MakeSnapshot({{1, 0, 0}, {2, 5, 5}}));
  // Object 2 missing — gap 1 ≤ 2, carried forward at its last position.
  Snapshot filled = filler.Fill(MakeSnapshot({{1, 1, 0}}));
  ASSERT_EQ(filled.size(), 2u);
  size_t idx = filled.IndexOf(2);
  ASSERT_NE(idx, Snapshot::kNpos);
  EXPECT_DOUBLE_EQ(filled.pos(idx).x, 5.0);
  EXPECT_DOUBLE_EQ(filled.pos(idx).y, 5.0);
}

TEST(InactivePeriodTest, DropsAfterThresholdExceeded) {
  InactivePeriodFiller filler(2);
  filler.Fill(MakeSnapshot({{1, 0, 0}, {2, 5, 5}}));
  EXPECT_EQ(filler.Fill(MakeSnapshot({{1, 0, 0}})).size(), 2u);  // gap 1
  EXPECT_EQ(filler.Fill(MakeSnapshot({{1, 0, 0}})).size(), 2u);  // gap 2
  EXPECT_EQ(filler.Fill(MakeSnapshot({{1, 0, 0}})).size(), 1u);  // gap 3
}

TEST(InactivePeriodTest, ReappearanceResetsClock) {
  InactivePeriodFiller filler(1);
  filler.Fill(MakeSnapshot({{1, 0, 0}, {2, 5, 5}}));
  EXPECT_EQ(filler.Fill(MakeSnapshot({{1, 0, 0}})).size(), 2u);  // gap 1
  // Object 2 reports again, with a new position. Velocity is now
  // (9-5)/2 = 2 per snapshot, so the next fill dead-reckons to 11.
  filler.Fill(MakeSnapshot({{1, 0, 0}, {2, 9, 9}}));
  Snapshot filled = filler.Fill(MakeSnapshot({{1, 0, 0}}));
  ASSERT_EQ(filled.size(), 2u);
  EXPECT_DOUBLE_EQ(filled.pos(filled.IndexOf(2)).x, 11.0);
  EXPECT_DOUBLE_EQ(filled.pos(filled.IndexOf(2)).y, 11.0);
}

TEST(InactivePeriodTest, DeadReckoningFollowsMovingGroup) {
  // An object moving east at 10/snapshot goes silent for two snapshots;
  // the fills advance it along its course instead of freezing it.
  InactivePeriodFiller filler(3);
  filler.Fill(MakeSnapshot({{1, 0, 0}}));
  filler.Fill(MakeSnapshot({{1, 10, 0}}));
  Snapshot f1 = filler.Fill(MakeSnapshot({{2, 999, 999}}));
  ASSERT_TRUE(f1.Contains(1));
  EXPECT_DOUBLE_EQ(f1.pos(f1.IndexOf(1)).x, 20.0);
  Snapshot f2 = filler.Fill(MakeSnapshot({{2, 999, 999}}));
  EXPECT_DOUBLE_EQ(f2.pos(f2.IndexOf(1)).x, 30.0);
}

TEST(InactivePeriodTest, SingleSightingCarriesForwardInPlace) {
  InactivePeriodFiller filler(2);
  filler.Fill(MakeSnapshot({{1, 7, 3}}));
  Snapshot filled = filler.Fill(MakeSnapshot({{2, 0, 0}}));
  ASSERT_TRUE(filled.Contains(1));
  EXPECT_DOUBLE_EQ(filled.pos(filled.IndexOf(1)).x, 7.0);
  EXPECT_DOUBLE_EQ(filled.pos(filled.IndexOf(1)).y, 3.0);
}

TEST(InactivePeriodTest, PaperExampleObject3TravelsThroughGap) {
  // Paper Fig. 22: o3 misses s2 but is assumed to travel with o1, o2 when
  // the inactive threshold covers the gap.
  InactivePeriodFiller filler(1);
  filler.Fill(MakeSnapshot({{1, 0, 0}, {2, 1, 0}, {3, 2, 0}}));
  Snapshot s2 = filler.Fill(MakeSnapshot({{1, 10, 0}, {2, 11, 0}}));
  EXPECT_TRUE(s2.Contains(3));
  Snapshot s3 = filler.Fill(MakeSnapshot({{1, 20, 0}, {2, 21, 0},
                                          {3, 22, 0}}));
  EXPECT_EQ(s3.size(), 3u);
}

TEST(InactivePeriodTest, FillStreamAndReset) {
  InactivePeriodFiller filler(3);
  SnapshotStream stream;
  stream.push_back(MakeSnapshot({{1, 0, 0}, {2, 5, 5}}));
  stream.push_back(MakeSnapshot({{1, 1, 0}}));
  SnapshotStream filled = filler.FillStream(stream);
  ASSERT_EQ(filled.size(), 2u);
  EXPECT_EQ(filled[1].size(), 2u);
  filler.Reset();
  // After reset object 2 is unknown again.
  EXPECT_EQ(filler.Fill(MakeSnapshot({{1, 0, 0}})).size(), 1u);
}

TEST(InactivePeriodTest, DurationPreserved) {
  InactivePeriodFiller filler(1);
  Snapshot s = filler.Fill(MakeSnapshot({{1, 0, 0}}, 7.5));
  EXPECT_DOUBLE_EQ(s.duration(), 7.5);
}

}  // namespace
}  // namespace tcomp
