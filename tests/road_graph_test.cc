#include "network/road_graph.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tcomp {
namespace {

TEST(RoadGraphTest, BuildAndBasicAccessors) {
  RoadGraph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({100, 0});
  NodeId c = g.AddNode({100, 50});
  auto e1 = g.AddEdge(a, b);
  auto e2 = g.AddEdge(b, c);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(e1.value()).length, 100.0);
  EXPECT_DOUBLE_EQ(g.edge(e2.value()).length, 50.0);
  EXPECT_EQ(g.EdgesAt(b).size(), 2u);
}

TEST(RoadGraphTest, RejectsBadEdges) {
  RoadGraph g;
  NodeId a = g.AddNode({0, 0});
  EXPECT_FALSE(g.AddEdge(a, 5).ok());
  EXPECT_FALSE(g.AddEdge(a, a).ok());
}

TEST(RoadGraphTest, CoordinatesInterpolate) {
  RoadGraph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({100, 0});
  EdgeId e = g.AddEdge(a, b).value();
  Point mid = g.Coordinates(NetworkPosition{e, 25.0});
  EXPECT_DOUBLE_EQ(mid.x, 25.0);
  EXPECT_DOUBLE_EQ(mid.y, 0.0);
}

TEST(RoadGraphTest, SameEdgeDistanceIsDirect) {
  RoadGraph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({100, 0});
  EdgeId e = g.AddEdge(a, b).value();
  EXPECT_DOUBLE_EQ(
      g.NetworkDistance({e, 10.0}, {e, 70.0}, 1000.0), 60.0);
  EXPECT_DOUBLE_EQ(g.NetworkDistance({e, 50.0}, {e, 50.0}, 1000.0), 0.0);
}

TEST(RoadGraphTest, CrossEdgeDistanceGoesThroughNodes) {
  // L-shape: a --100-- b --50-- c.
  RoadGraph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({100, 0});
  NodeId c = g.AddNode({100, 50});
  EdgeId ab = g.AddEdge(a, b).value();
  EdgeId bc = g.AddEdge(b, c).value();
  // 30 from a on ab; 20 from b on bc → 70 + 20 = 90.
  EXPECT_DOUBLE_EQ(
      g.NetworkDistance({ab, 30.0}, {bc, 20.0}, 1000.0), 90.0);
  // Bound below the true distance → infinity.
  EXPECT_EQ(g.NetworkDistance({ab, 30.0}, {bc, 20.0}, 50.0),
            RoadGraph::kInfinity);
}

TEST(RoadGraphTest, ParallelAvenuesAreNetworkFar) {
  // Two parallel avenues joined only at their west ends:
  //   a0 ── a1   (avenue A, y=0)
  //   |
  //   b0 ── b1   (avenue B, y=100)
  RoadGraph g;
  NodeId a0 = g.AddNode({0, 0});
  NodeId a1 = g.AddNode({400, 0});
  NodeId b0 = g.AddNode({0, 100});
  NodeId b1 = g.AddNode({400, 100});
  EdgeId ea = g.AddEdge(a0, a1).value();
  EdgeId eb = g.AddEdge(b0, b1).value();
  g.AddEdge(a0, b0).value();

  NetworkPosition on_a{ea, 400.0};  // east end of A
  NetworkPosition on_b{eb, 400.0};  // east end of B
  // Euclidean: 100 m apart. Network: 400 + 100 + 400 = 900 m.
  EXPECT_DOUBLE_EQ(Distance(g.Coordinates(on_a), g.Coordinates(on_b)),
                   100.0);
  EXPECT_DOUBLE_EQ(g.NetworkDistance(on_a, on_b, 10000.0), 900.0);
}

TEST(RoadGraphTest, GridFactoryShape) {
  RoadGraph g = RoadGraph::Grid(4, 3, 100.0);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Horizontal: 3 per row × 3 rows; vertical: 4 per column × 2 = 17.
  EXPECT_EQ(g.num_edges(), 3u * 3u + 4u * 2u);
  // Opposite corners: Manhattan distance through the grid.
  Point corner = g.node_pos(11);
  EXPECT_DOUBLE_EQ(corner.x, 300.0);
  EXPECT_DOUBLE_EQ(corner.y, 200.0);
}

TEST(RoadGraphTest, GridDistanceIsManhattan) {
  RoadGraph g = RoadGraph::Grid(5, 5, 100.0);
  // Positions at two intersections (offset 0 on incident edges).
  NetworkPosition p1 = g.Snap(Point{0, 0});
  NetworkPosition p2 = g.Snap(Point{300, 200});
  EXPECT_NEAR(g.NetworkDistance(p1, p2, 1e6), 500.0, 1e-6);
}

TEST(RoadGraphTest, SnapFindsNearestEdge) {
  RoadGraph g = RoadGraph::Grid(4, 4, 100.0);
  double snap_dist = 0.0;
  // A point 10 m north of the road y=0, x=150.
  NetworkPosition p = g.Snap(Point{150.0, 10.0}, &snap_dist);
  EXPECT_DOUBLE_EQ(snap_dist, 10.0);
  Point back = g.Coordinates(p);
  EXPECT_DOUBLE_EQ(back.x, 150.0);
  EXPECT_DOUBLE_EQ(back.y, 0.0);
}

TEST(RoadGraphTest, SnapFarOutsideGridStillWorks) {
  RoadGraph g = RoadGraph::Grid(3, 3, 100.0);
  double snap_dist = 0.0;
  NetworkPosition p = g.Snap(Point{5000.0, 5000.0}, &snap_dist);
  Point back = g.Coordinates(p);
  EXPECT_DOUBLE_EQ(back.x, 200.0);
  EXPECT_DOUBLE_EQ(back.y, 200.0);
  EXPECT_NEAR(snap_dist, Distance(Point{5000, 5000}, back), 1e-9);
}

TEST(RoadGraphTest, SnapMatchesBruteForceOnRandomPoints) {
  RoadGraph g = RoadGraph::Grid(6, 5, 120.0);
  Pcg32 rng(3);
  for (int round = 0; round < 200; ++round) {
    Point p{rng.NextDouble(-50, 650), rng.NextDouble(-50, 530)};
    double got_dist;
    NetworkPosition got = g.Snap(p, &got_dist);
    // Brute force over all edges.
    double best = RoadGraph::kInfinity;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      Point a = g.node_pos(g.edge(e).from);
      Point b = g.node_pos(g.edge(e).to);
      // Point-segment distance via projection.
      Point d = b - a;
      double len2 = d.x * d.x + d.y * d.y;
      double t = len2 == 0 ? 0
                           : std::clamp(((p.x - a.x) * d.x +
                                         (p.y - a.y) * d.y) / len2,
                                        0.0, 1.0);
      best = std::min(best, Distance(p, a + d * t));
    }
    EXPECT_NEAR(got_dist, best, 1e-9) << "round " << round;
    (void)got;
  }
}

TEST(RoadGraphTest, NetworkDistanceMatchesBruteForceDijkstra) {
  // Random sparse graph; verify NetworkDistance against an O(V³)
  // Floyd-Warshall on node distances plus endpoint attachment.
  Pcg32 rng(9);
  RoadGraph g;
  const int kNodes = 12;
  for (int i = 0; i < kNodes; ++i) {
    g.AddNode(Point{rng.NextDouble(0, 500), rng.NextDouble(0, 500)});
  }
  std::vector<RoadGraph::Edge> edges;
  for (int i = 0; i < kNodes; ++i) {
    for (int j = i + 1; j < kNodes; ++j) {
      if (rng.NextBernoulli(0.3)) {
        auto e = g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        ASSERT_TRUE(e.ok());
      }
    }
  }
  if (g.num_edges() < 2) return;

  // Floyd-Warshall node-to-node.
  std::vector<std::vector<double>> dist(
      kNodes, std::vector<double>(kNodes, RoadGraph::kInfinity));
  for (int i = 0; i < kNodes; ++i) dist[i][i] = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    int u = static_cast<int>(g.edge(e).from);
    int v = static_cast<int>(g.edge(e).to);
    dist[u][v] = std::min(dist[u][v], g.edge(e).length);
    dist[v][u] = dist[u][v];
  }
  for (int k = 0; k < kNodes; ++k) {
    for (int i = 0; i < kNodes; ++i) {
      for (int j = 0; j < kNodes; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }

  for (int round = 0; round < 60; ++round) {
    EdgeId e1 = rng.NextBounded(static_cast<uint32_t>(g.num_edges()));
    EdgeId e2 = rng.NextBounded(static_cast<uint32_t>(g.num_edges()));
    NetworkPosition p1{e1, rng.NextDouble(0, g.edge(e1).length)};
    NetworkPosition p2{e2, rng.NextDouble(0, g.edge(e2).length)};

    double expected = RoadGraph::kInfinity;
    if (e1 == e2) expected = std::abs(p1.offset - p2.offset);
    int u1 = static_cast<int>(g.edge(e1).from);
    int v1 = static_cast<int>(g.edge(e1).to);
    int u2 = static_cast<int>(g.edge(e2).from);
    int v2 = static_cast<int>(g.edge(e2).to);
    double l1 = g.edge(e1).length;
    double l2 = g.edge(e2).length;
    double ends1[2] = {p1.offset, l1 - p1.offset};
    double ends2[2] = {p2.offset, l2 - p2.offset};
    int nodes1[2] = {u1, v1};
    int nodes2[2] = {u2, v2};
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        expected = std::min(
            expected, ends1[x] + dist[nodes1[x]][nodes2[y]] + ends2[y]);
      }
    }
    double got = g.NetworkDistance(p1, p2, 1e9);
    if (expected == RoadGraph::kInfinity) {
      EXPECT_EQ(got, RoadGraph::kInfinity) << "round " << round;
    } else {
      EXPECT_NEAR(got, expected, 1e-6) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace tcomp
