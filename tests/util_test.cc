#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace tcomp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad epsilon");
}

TEST(StatusTest, AllCodesPrint) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IO_ERROR: x");
  EXPECT_EQ(Status::Corruption("x").ToString(), "CORRUPTION: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

Status FailsThenPropagates() {
  TCOMP_RETURN_IF_ERROR(Status::IoError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  StatusOr<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(Pcg32Test, DeterministicAcrossInstances) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, SeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int v = rng.NextInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32Test, GaussianMoments) {
  Pcg32 rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32Test, BoundedIsRoughlyUniform) {
  Pcg32 rng(13);
  int counts[8] = {0};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(TimerTest, AccumulatesAcrossIntervals) {
  Timer t;
  t.Start();
  t.Stop();
  double first = t.Seconds();
  t.Start();
  t.Stop();
  EXPECT_GE(t.Seconds(), first);
  t.Reset();
  EXPECT_EQ(t.Seconds(), 0.0);
}

TEST(FlagParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=3",  "--beta", "7",
                        "--gamma",   "--name=abc", "pos1",   "--ratio=2.5",
                        "--on=true"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(9, argv).ok());
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 2.5);
  EXPECT_TRUE(flags.GetBool("on", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags;
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagParserTest, RejectsBareDoubleDash) {
  FlagParser flags;
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, RejectsEmptyName) {
  FlagParser flags;
  const char* argv[] = {"prog", "--=3"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

}  // namespace
}  // namespace tcomp
