#include <gtest/gtest.h>

#include <algorithm>

#include "core/discoverer.h"
#include "data/military_gen.h"
#include "data/synthetic_gen.h"
#include "data/trajectory_io.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "stream/inactive_period.h"
#include "stream/sliding_window.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

/// End-to-end: records (shuffled within windows, with drops) → sliding
/// window → inactive-period fill → BU discovery → precision/recall
/// against ground truth. This is the paper's whole pipeline in one test.
TEST(PipelineTest, RecordsToCompanionsEndToEnd) {
  MilitaryOptions options;
  options.num_units = 150;
  options.num_teams = 6;
  options.num_snapshots = 40;
  options.detachments_per_team = 0.0;  // clean march; noise comes from drops
  MilitaryDataset data = GenerateMilitary(options);

  // Flatten to records at 60 s per snapshot, jitter report times within
  // the window, drop 5% of reports, and shuffle arrival order locally.
  std::vector<TrajectoryRecord> records = StreamToRecords(data.stream, 60.0);
  Pcg32 rng(99);
  std::vector<TrajectoryRecord> noisy;
  for (TrajectoryRecord r : records) {
    if (rng.NextBernoulli(0.05)) continue;  // dropped report
    r.timestamp += rng.NextDouble(0.0, 59.0);
    noisy.push_back(r);
  }
  // Local shuffling: swap nearby records to simulate network reordering.
  for (size_t i = 0; i + 1 < noisy.size(); i += 2) {
    if (rng.NextBernoulli(0.3)) std::swap(noisy[i], noisy[i + 1]);
  }

  SlidingWindowOptions wopts;
  wopts.mode = WindowMode::kEqualLength;
  wopts.window_length = 60.0;
  SlidingWindowSnapshotter window(wopts);
  InactivePeriodFiller filler(/*max_inactive_snapshots=*/2);

  DiscoveryParams params;
  params.cluster.epsilon = 24.0;
  params.cluster.mu = 5;
  params.size_threshold = 10;
  params.duration_threshold = 10;
  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);

  std::vector<Snapshot> ready;
  int64_t incremental_reports = 0;
  for (const TrajectoryRecord& r : noisy) {
    ASSERT_TRUE(window.Push(r, &ready).ok());
    for (const Snapshot& s : ready) {
      std::vector<Companion> newly;
      discoverer->ProcessSnapshot(filler.Fill(s), &newly);
      incremental_reports += static_cast<int64_t>(newly.size());
    }
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& s : ready) {
    discoverer->ProcessSnapshot(filler.Fill(s), nullptr);
  }

  // Companions reported incrementally, not only at the end.
  EXPECT_GT(incremental_reports, 0);

  std::vector<ObjectSet> retrieved;
  for (const Companion& c : discoverer->log().companions()) {
    retrieved.push_back(c.objects);
  }
  // Under dropped reports a team legitimately surfaces as several
  // near-variant sets (a member blinks out, the candidate chain forks),
  // so precision is scored coverage-style: does each output correspond to
  // a real team?
  // Fragments can be as small as δs=10 members of a ~25-member team
  // (Jaccard 0.4), so the match threshold sits below that.
  EffectivenessResult score =
      ScoreCompanionsCoverage(retrieved, data.ground_truth, 0.35);
  // All six teams must be found despite 5% dropped reports, and every
  // reported set must correspond to a real team (no mixed/noise groups).
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  EXPECT_GT(score.precision, 0.9);
}

TEST(PipelineTest, RunnerProducesComparableResults) {
  // The distance-work ordering asserted below compares BU against SC's
  // full re-clustering; pin the incremental layer off so the relation
  // is the paper's, independent of how much coherence SC can exploit.
  testing_util::IncrementalClusteringGuard incremental_off(false);
  Dataset d = MakeMilitaryD2(/*num_snapshots=*/40);
  DiscoveryParams params = d.default_params;

  RunResult bu =
      RunStreamingAlgorithm(Algorithm::kBuddy, params, d.stream);
  RunResult sc =
      RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d.stream);
  RunResult ci = RunStreamingAlgorithm(Algorithm::kClusteringIntersection,
                                       params, d.stream);
  RunResult sw = RunSwarmBaseline(SwarmParamsFrom(params), d.stream);

  // BU ≡ SC; CI ⊇ SC; swarms ⊇ companions (as sets of sets).
  EXPECT_EQ(bu.companions.size(), sc.companions.size());
  EXPECT_GE(ci.companions.size(), sc.companions.size());

  EffectivenessResult bu_score =
      ScoreCompanions(bu.companions, d.ground_truth);
  EffectivenessResult ci_score =
      ScoreCompanions(ci.companions, d.ground_truth);
  EffectivenessResult sw_score =
      ScoreCompanions(sw.companions, d.ground_truth);

  // The paper's Fig. 20 ordering at this reduced scale: BU/SC at least as
  // selective as both baselines; full recall everywhere. (The SW-vs-CI
  // gap is a full-scale effect — bench_effect_size reproduces it.)
  EXPECT_EQ(bu_score.recall, 1.0);
  EXPECT_EQ(sw_score.recall, 1.0);
  EXPECT_GE(bu_score.precision, sw_score.precision);
  EXPECT_GE(bu_score.precision, ci_score.precision);

  // Cost ordering on structured data: BU does the least distance work;
  // CI stores the most candidates.
  EXPECT_LT(bu.stats.distance_ops, sc.stats.distance_ops);
  EXPECT_GT(ci.space_cost, bu.space_cost);
}

TEST(PipelineTest, EqualWidthWindowAlsoWorks) {
  Dataset d = MakeMilitaryD2(/*num_snapshots=*/30);
  std::vector<TrajectoryRecord> records = StreamToRecords(d.stream, 60.0);

  SlidingWindowOptions wopts;
  wopts.mode = WindowMode::kEqualWidth;
  wopts.min_objects = 780;  // one full population per snapshot
  SlidingWindowSnapshotter window(wopts);

  auto discoverer = MakeDiscoverer(Algorithm::kSmartClosed,
                                   d.default_params);
  std::vector<Snapshot> ready;
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(window.Push(r, &ready).ok());
    for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);

  std::vector<ObjectSet> retrieved;
  for (const Companion& c : discoverer->log().companions()) {
    retrieved.push_back(c.objects);
  }
  EffectivenessResult score = ScoreCompanions(retrieved, d.ground_truth);
  EXPECT_EQ(score.recall, 1.0);
}

}  // namespace
}  // namespace tcomp
