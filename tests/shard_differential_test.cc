// Serve-vs-batch differentials for the sharded C-step (ISSUE 7): a
// pipeline serving with --shards ∈ {1, 2, 8} must emit companions
// byte-identical to the batch discover path — for every algorithm, with
// the word-parallel kernels on or off, with the incremental clustering
// layer on or off, and across a mid-stream kill + resume at a *different*
// shard count. Plus the convoy-baseline differential through the same
// ClusterProvider seam, and a TSan hammer on the partitioner/merge
// queues (this binary carries the tsan label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/convoy.h"
#include "core/dbscan.h"
#include "core/discoverer.h"
#include "data/group_model.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "service/pipeline.h"
#include "shard/sharded_engine.h"
#include "stream/sliding_window.h"
#include "util/dense_bitset.h"

namespace tcomp {
namespace {

constexpr double kSecondsPerSnapshot = 60.0;

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 80;
  options.num_snapshots = 24;
  options.area_size = 1500.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 6;
  return params;
}

std::string CompanionsCsv(const std::vector<Companion>& companions) {
  std::ostringstream out;
  WriteCompanionsCsv(companions, out);
  return out.str();
}

/// The reference: the batch discover path, no sharding anywhere.
std::string BatchCsv(Algorithm algorithm,
                     const std::vector<TrajectoryRecord>& records) {
  auto discoverer = MakeDiscoverer(algorithm, BaseParams());
  SlidingWindowOptions wopts;
  wopts.window_length = kSecondsPerSnapshot;
  SlidingWindowSnapshotter window(wopts);
  std::vector<Snapshot> ready;
  for (const TrajectoryRecord& r : records) {
    EXPECT_TRUE(window.Push(r, &ready).ok());
    for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);
  return CompanionsCsv(discoverer->log().companions());
}

ServicePipelineOptions PipelineOptions(Algorithm algorithm, int shards) {
  ServicePipelineOptions opts;
  opts.algorithm = algorithm;
  opts.params = BaseParams();
  opts.window.window_length = kSecondsPerSnapshot;
  opts.queue_capacity = 64;
  opts.shards = shards;
  return opts;
}

std::string ServeCsv(Algorithm algorithm, int shards,
                     const std::vector<TrajectoryRecord>& records,
                     ServiceStats* stats_out = nullptr) {
  ServicePipeline pipeline(PipelineOptions(algorithm, shards));
  EXPECT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    EXPECT_TRUE(pipeline.Ingest(r).ok());
  }
  EXPECT_TRUE(pipeline.Stop().ok());
  if (stats_out != nullptr) *stats_out = pipeline.Stats();
  return CompanionsCsv(pipeline.Companions());
}

/// Process-gate guard: every toggle restored on scope exit, so a failing
/// assertion cannot leak a disabled kernel into the next test.
class ToggleGuard {
 public:
  ToggleGuard(bool kernels, bool incremental) {
    SetBitsetKernelsEnabled(kernels);
    SetIncrementalClusteringEnabled(incremental);
  }
  ~ToggleGuard() {
    SetBitsetKernelsEnabled(true);
    SetIncrementalClusteringEnabled(true);
  }
};

class ShardDifferentialTest : public ::testing::TestWithParam<Algorithm> {};

/// serve --shards {1, 2, 8} == batch discover, byte for byte, for every
/// algorithm. BU cannot shard; the fallback must still match batch.
TEST_P(ShardDifferentialTest, ServeShardedMatchesBatch) {
  GroupDataset data = ChurnyStream(1201);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(GetParam(), records);
  for (int shards : {1, 2, 8}) {
    ServiceStats stats;
    EXPECT_EQ(ServeCsv(GetParam(), shards, records, &stats), expected)
        << "shards " << shards;
    if (shards == 1) {
      EXPECT_EQ(stats.shards, 1);
      EXPECT_FALSE(stats.shard_fallback);
      EXPECT_EQ(stats.shard_snapshots, 0);
    } else if (GetParam() == Algorithm::kBuddy) {
      EXPECT_TRUE(stats.shard_fallback);
      EXPECT_EQ(stats.shard_snapshots, 0);
    } else {
      EXPECT_EQ(stats.shards, shards);
      EXPECT_FALSE(stats.shard_fallback);
      EXPECT_EQ(stats.shard_snapshots, stats.discovery.snapshots);
      EXPECT_GT(stats.shard_halo_objects, 0);
    }
  }
}

/// The kernel and incremental process gates compose with sharding: all
/// four toggle combinations serve byte-identical products at 8 shards.
TEST_P(ShardDifferentialTest, ShardedSurvivesKernelAndIncrementalToggles) {
  GroupDataset data = ChurnyStream(1202);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected;
  {
    ToggleGuard guard(true, true);
    expected = BatchCsv(GetParam(), records);
  }
  for (bool kernels : {true, false}) {
    for (bool incremental : {true, false}) {
      ToggleGuard guard(kernels, incremental);
      EXPECT_EQ(ServeCsv(GetParam(), 8, records), expected)
          << "kernels " << kernels << ", incremental " << incremental;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ShardDifferentialTest,
                         ::testing::Values(
                             Algorithm::kClusteringIntersection,
                             Algorithm::kSmartClosed, Algorithm::kBuddy),
                         [](const auto& info) {
                           return AlgorithmName(info.param);
                         });

/// Kill mid-stream under one shard count, resume under another: no shard
/// state survives a snapshot close, so the checkpoint is shard-agnostic
/// by construction and the resumed run must equal one uninterrupted batch
/// run. (The process-level SIGTERM variant lives in cli_smoke.sh; this is
/// the library-level equivalent — Stop() is exactly what the SIGTERM
/// handler runs.)
TEST(ShardResumeTest, ResumeAtDifferentShardCountMatchesBatch) {
  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed}) {
    GroupDataset data = ChurnyStream(1203);
    std::vector<TrajectoryRecord> records =
        StreamToRecords(data.stream, kSecondsPerSnapshot);
    std::string expected = BatchCsv(algorithm, records);

    double split_time = 12 * kSecondsPerSnapshot;
    std::string ckpt = ::testing::TempDir() + "/shard_resume.ckpt";
    std::remove(ckpt.c_str());

    {
      ServicePipelineOptions opts = PipelineOptions(algorithm, 2);
      opts.checkpoint_path = ckpt;
      ServicePipeline first(opts);
      ASSERT_TRUE(first.Start().ok());
      for (const TrajectoryRecord& r : records) {
        if (r.timestamp < split_time) {
          ASSERT_TRUE(first.Ingest(r).ok());
        }
      }
      ASSERT_TRUE(first.Stop().ok());
      EXPECT_GE(first.Stats().checkpoints_written, 1);
    }
    {
      ServicePipelineOptions opts = PipelineOptions(algorithm, 8);
      opts.checkpoint_path = ckpt;
      ServicePipeline second(opts);
      ASSERT_TRUE(second.Start().ok());
      EXPECT_TRUE(second.Stats().resumed);
      for (const TrajectoryRecord& r : records) {
        if (r.timestamp >= split_time) {
          ASSERT_TRUE(second.Ingest(r).ok());
        }
      }
      ASSERT_TRUE(second.Stop().ok());
      EXPECT_EQ(CompanionsCsv(second.Companions()), expected)
          << AlgorithmName(algorithm);
      EXPECT_EQ(second.Stats().shards, 8);
    }
    std::remove(ckpt.c_str());
  }
}

/// And the reverse direction: sharded run resumed by a --shards 1
/// incarnation (the operational kill switch — turn sharding off without
/// losing the stream).
TEST(ShardResumeTest, ShardedCheckpointResumesUnsharded) {
  GroupDataset data = ChurnyStream(1204);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(Algorithm::kSmartClosed, records);

  double split_time = 12 * kSecondsPerSnapshot;
  std::string ckpt = ::testing::TempDir() + "/shard_killswitch.ckpt";
  std::remove(ckpt.c_str());
  {
    ServicePipelineOptions opts =
        PipelineOptions(Algorithm::kSmartClosed, 8);
    opts.checkpoint_path = ckpt;
    ServicePipeline first(opts);
    ASSERT_TRUE(first.Start().ok());
    for (const TrajectoryRecord& r : records) {
      if (r.timestamp < split_time) {
        ASSERT_TRUE(first.Ingest(r).ok());
      }
    }
    ASSERT_TRUE(first.Stop().ok());
  }
  {
    ServicePipelineOptions opts =
        PipelineOptions(Algorithm::kSmartClosed, 1);
    opts.checkpoint_path = ckpt;
    ServicePipeline second(opts);
    ASSERT_TRUE(second.Start().ok());
    EXPECT_TRUE(second.Stats().resumed);
    for (const TrajectoryRecord& r : records) {
      if (r.timestamp >= split_time) {
        ASSERT_TRUE(second.Ingest(r).ok());
      }
    }
    ASSERT_TRUE(second.Stop().ok());
    EXPECT_EQ(CompanionsCsv(second.Companions()), expected);
  }
  std::remove(ckpt.c_str());
}

/// Convoy baseline through the same provider seam: identical convoys
/// with and without the sharded engine.
TEST(ShardConvoyTest, ConvoysIdenticalWithShardedProvider) {
  GroupDataset data = ChurnyStream(1205);
  ConvoyParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.min_objects = 5;
  params.min_lifetime = 6;
  std::vector<Convoy> want = DiscoverConvoys(data.stream, params);

  for (int shards : {2, 8}) {
    ShardedClusterEngine engine(params.cluster, shards);
    ConvoyParams sharded = params;
    sharded.cluster_provider = [&engine](const Snapshot& snapshot,
                                         int64_t* distance_ops) {
      return engine.Cluster(snapshot, distance_ops);
    };
    std::vector<Convoy> got = DiscoverConvoys(data.stream, sharded);
    ASSERT_EQ(got.size(), want.size()) << "shards " << shards;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].objects, want[i].objects);
      EXPECT_EQ(got[i].begin, want[i].begin);
      EXPECT_EQ(got[i].end, want[i].end);
    }
    EXPECT_GT(engine.stats().snapshots, 0);
  }
}

/// TSan hammer on the shard worker queues: one thread drives snapshot
/// after snapshot through an 8-shard engine (Submit/Wait on every queue)
/// while observer threads pound the depth/peak atomics and the metrics
/// export — the monitoring reads the live service performs. Products must
/// stay correct throughout.
TEST(ShardHammerTest, ConcurrentMetricsReadsDuringClustering) {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  ShardedClusterEngine engine(params, 8);
  GroupDataset data = ChurnyStream(1206);

  std::atomic<bool> stop{false};
  std::thread gauge_reader([&] {
    MetricsRegistry registry;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.ExportMetrics(&registry);
      (void)registry.ExpositionText();
      std::this_thread::yield();
    }
  });
  std::thread stats_reader([&] {
    int64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ShardEngineStats stats = engine.stats();
      EXPECT_GE(stats.snapshots, last);  // monotone under one writer
      last = stats.snapshots;
      std::this_thread::yield();
    }
  });

  for (int round = 0; round < 4; ++round) {
    for (const Snapshot& snapshot : data.stream) {
      Clustering want = Dbscan(snapshot, params);
      Clustering got = engine.Cluster(snapshot, nullptr);
      ASSERT_EQ(got.labels, want.labels);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  gauge_reader.join();
  stats_reader.join();
  EXPECT_EQ(engine.stats().snapshots,
            4 * static_cast<int64_t>(data.stream.size()));
}

}  // namespace
}  // namespace tcomp
