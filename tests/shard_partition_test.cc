// Unit tests of the sharded C-step building blocks (src/shard/): the
// stripe partitioner's ownership/halo invariants, the per-shard
// neighborhood computation, and the merge stage's byte-identity to the
// reference Dbscan(). The end-to-end serve-vs-batch differentials live in
// shard_differential_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "shard/shard_worker.h"
#include "shard/sharded_engine.h"
#include "util/random.h"

namespace tcomp {
namespace {

/// Clumpy random snapshot: a few dense blobs plus uniform background,
/// with some exact duplicate positions (the tie-break paths) mixed in.
Snapshot RandomSnapshot(uint64_t seed, size_t n, double area) {
  Pcg32 rng(seed);
  std::vector<ObjectPosition> positions;
  positions.reserve(n);
  const int blobs = 4;
  std::vector<Point> centers;
  for (int b = 0; b < blobs; ++b) {
    centers.push_back(Point{rng.NextDouble(0.0, area),
                            rng.NextDouble(0.0, area)});
  }
  for (size_t i = 0; i < n; ++i) {
    Point p;
    if (rng.NextBernoulli(0.7)) {
      const Point& c = centers[rng.NextBounded(blobs)];
      p = Point{c.x + rng.NextGaussian() * 15.0,
                c.y + rng.NextGaussian() * 15.0};
    } else {
      p = Point{rng.NextDouble(0.0, area), rng.NextDouble(0.0, area)};
    }
    if (i > 0 && rng.NextBernoulli(0.05)) p = positions[i - 1].pos;
    positions.push_back(ObjectPosition{static_cast<ObjectId>(i * 3), p});
  }
  return Snapshot(std::move(positions), 1.0);
}

bool SameClustering(const Clustering& a, const Clustering& b) {
  return a.labels == b.labels && a.core == b.core && a.clusters == b.clusters;
}

TEST(EffectiveShardCountTest, ClampsToMinOwnedPerShard) {
  EXPECT_EQ(EffectiveShardCount(1, 1000), 1);
  EXPECT_EQ(EffectiveShardCount(8, 1000), 8);
  EXPECT_EQ(EffectiveShardCount(8, 8 * kMinOwnedPerShard), 8);
  EXPECT_EQ(EffectiveShardCount(8, 8 * kMinOwnedPerShard - 1), 7);
  EXPECT_EQ(EffectiveShardCount(8, kMinOwnedPerShard - 1), 1);
  EXPECT_EQ(EffectiveShardCount(8, 0), 1);
  EXPECT_EQ(EffectiveShardCount(0, 1000), 1);
}

TEST(PartitionTest, OwnedSlicesPartitionTheIndexSpace) {
  Snapshot snapshot = RandomSnapshot(1, 700, 2000.0);
  ShardPlan plan = PartitionSnapshot(snapshot, 8, 18.0);
  ASSERT_EQ(plan.slices.size(), 8u);
  std::vector<uint32_t> all;
  int64_t halo_total = 0;
  for (const ShardSlice& slice : plan.slices) {
    EXPECT_TRUE(std::is_sorted(slice.owned.begin(), slice.owned.end()));
    EXPECT_TRUE(std::is_sorted(slice.halo.begin(), slice.halo.end()));
    EXPECT_GE(slice.owned.size(), kMinOwnedPerShard);
    all.insert(all.end(), slice.owned.begin(), slice.owned.end());
    halo_total += static_cast<int64_t>(slice.halo.size());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), snapshot.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<uint32_t>(i));
  }
  EXPECT_EQ(plan.halo_objects, halo_total);
}

TEST(PartitionTest, HaloCoversEveryCrossStripeEpsNeighbor) {
  const double eps = 18.0;
  const double eps2 = eps * eps;
  for (uint64_t seed = 2; seed < 5; ++seed) {
    Snapshot snapshot = RandomSnapshot(seed, 400, 900.0);
    for (int shards : {2, 3, 8}) {
      ShardPlan plan = PartitionSnapshot(snapshot, shards, eps);
      for (const ShardSlice& slice : plan.slices) {
        // local = owned ∪ halo must contain every ε-neighbor of every
        // owned index (brute force over the whole snapshot).
        std::vector<bool> local(snapshot.size(), false);
        for (uint32_t i : slice.owned) local[i] = true;
        for (uint32_t i : slice.halo) local[i] = true;
        for (uint32_t i : slice.owned) {
          for (size_t j = 0; j < snapshot.size(); ++j) {
            if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
              EXPECT_TRUE(local[j])
                  << "shard missing eps-neighbor " << j << " of owned "
                  << i << " (seed " << seed << ", shards " << shards << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PartitionTest, ExactBoundaryPairsStayCovered) {
  // Points exactly ε apart along the split axis, placed so stripe cuts
  // land between them — the closed-ball boundary case the FP-padded halo
  // radius exists for.
  const double eps = 10.0;
  std::vector<ObjectPosition> positions;
  for (int i = 0; i < 128; ++i) {
    positions.push_back(ObjectPosition{
        static_cast<ObjectId>(i), Point{i * eps, 0.0}});
  }
  Snapshot snapshot(std::move(positions), 1.0);
  ShardPlan plan = PartitionSnapshot(snapshot, 4, eps);
  const double eps2 = eps * eps;
  for (const ShardSlice& slice : plan.slices) {
    std::vector<bool> local(snapshot.size(), false);
    for (uint32_t i : slice.owned) local[i] = true;
    for (uint32_t i : slice.halo) local[i] = true;
    for (uint32_t i : slice.owned) {
      for (size_t j = 0; j < snapshot.size(); ++j) {
        if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
          EXPECT_TRUE(local[j]);
        }
      }
    }
  }
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  Snapshot snapshot = RandomSnapshot(7, 500, 1200.0);
  ShardPlan a = PartitionSnapshot(snapshot, 4, 18.0);
  ShardPlan b = PartitionSnapshot(snapshot, 4, 18.0);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (size_t k = 0; k < a.slices.size(); ++k) {
    EXPECT_EQ(a.slices[k].owned, b.slices[k].owned);
    EXPECT_EQ(a.slices[k].halo, b.slices[k].halo);
  }
  EXPECT_EQ(a.halo_objects, b.halo_objects);
  EXPECT_EQ(a.split_by_x, b.split_by_x);
}

TEST(PartitionTest, EmptyAndTinySnapshots) {
  Snapshot empty;
  ShardPlan plan = PartitionSnapshot(empty, 8, 18.0);
  ASSERT_EQ(plan.slices.size(), 1u);
  EXPECT_TRUE(plan.slices[0].owned.empty());
  EXPECT_TRUE(plan.slices[0].halo.empty());

  Snapshot tiny = RandomSnapshot(9, 5, 100.0);
  plan = PartitionSnapshot(tiny, 8, 18.0);
  ASSERT_EQ(plan.slices.size(), 1u);  // collapses below kMinOwnedPerShard
  EXPECT_EQ(plan.slices[0].owned.size(), tiny.size());
  EXPECT_TRUE(plan.slices[0].halo.empty());
}

TEST(ShardWorkerTest, NeighborListsMatchBruteForce) {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  const double eps2 = params.epsilon * params.epsilon;
  Snapshot snapshot = RandomSnapshot(11, 300, 800.0);
  ShardPlan plan = PartitionSnapshot(snapshot, 3, params.epsilon);
  for (const ShardSlice& slice : plan.slices) {
    ShardResult result = ComputeShardNeighbors(snapshot, slice, params);
    ASSERT_EQ(result.neighbors.size(), slice.owned.size());
    for (size_t t = 0; t < slice.owned.size(); ++t) {
      std::vector<uint32_t> want;
      for (size_t j = 0; j < snapshot.size(); ++j) {
        if (WithinEps(snapshot.pos(slice.owned[t]), snapshot.pos(j),
                      eps2)) {
          want.push_back(static_cast<uint32_t>(j));
        }
      }
      EXPECT_EQ(result.neighbors[t], want)
          << "owned index " << slice.owned[t];
    }
  }
}

TEST(MergeTest, ByteIdenticalToDbscanAcrossShardCounts) {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 4;
  for (uint64_t seed = 21; seed < 24; ++seed) {
    Snapshot snapshot = RandomSnapshot(seed, 450, 1000.0);
    Clustering want = Dbscan(snapshot, params);
    for (int shards : {1, 2, 3, 8}) {
      ShardPlan plan = PartitionSnapshot(snapshot, shards, params.epsilon);
      std::vector<ShardResult> results;
      for (const ShardSlice& slice : plan.slices) {
        results.push_back(ComputeShardNeighbors(snapshot, slice, params));
      }
      int64_t ops = 0;
      Clustering got = MergeShardResults(snapshot, plan, std::move(results),
                                         params.mu, &ops);
      EXPECT_TRUE(SameClustering(got, want))
          << "seed " << seed << ", shards " << shards;
      EXPECT_GT(ops, 0);
    }
  }
}

TEST(ShardedEngineTest, MatchesDbscanAndIsDeterministic) {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  for (int shards : {1, 2, 8}) {
    ShardedClusterEngine engine(params, shards);
    EXPECT_EQ(engine.num_shards(), shards);
    int64_t ops_first = 0, ops_second = 0;
    for (uint64_t seed = 31; seed < 34; ++seed) {
      Snapshot snapshot = RandomSnapshot(seed, 400, 1100.0);
      Clustering want = Dbscan(snapshot, params);
      Clustering got = engine.Cluster(snapshot, &ops_first);
      EXPECT_TRUE(SameClustering(got, want))
          << "seed " << seed << ", shards " << shards;
      // Same snapshot again: identical products AND identical op count
      // (determinism of the sharded path at a fixed shard count).
      Clustering again = engine.Cluster(snapshot, &ops_second);
      EXPECT_TRUE(SameClustering(again, want));
    }
    EXPECT_EQ(ops_first, ops_second);
    ShardEngineStats stats = engine.stats();
    EXPECT_EQ(stats.snapshots, 6);
    EXPECT_GT(stats.routed_objects, 0);
    if (shards > 1) {
      EXPECT_GT(stats.halo_objects, 0);
      EXPECT_GE(stats.halo_peak, 1);
    } else {
      EXPECT_EQ(stats.halo_objects, 0);
    }
    EXPECT_EQ(stats.merge_fanin_last, shards);
  }
}

TEST(ShardedEngineTest, ExportMetricsHasStableNameSetPerShardCount) {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  ShardedClusterEngine engine(params, 4);
  MetricsRegistry registry;
  engine.ExportMetrics(&registry);
  std::string before = registry.ExpositionText();
  Snapshot snapshot = RandomSnapshot(41, 300, 900.0);
  engine.Cluster(snapshot, nullptr);
  engine.ExportMetrics(&registry);
  std::string after = registry.ExpositionText();
  // Same series set before and after traffic (values may differ): the
  // QUERY metrics name-set stability check in cli_smoke.sh depends on it.
  auto names_of = [](const std::string& text) {
    std::vector<std::string> names;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(pos, end - pos);
      size_t space = line.rfind(' ');
      if (!line.empty() && line[0] != '#' && space != std::string::npos) {
        names.push_back(line.substr(0, space));
      }
      pos = end + 1;
    }
    return names;
  };
  EXPECT_EQ(names_of(before), names_of(after));
  // Per-shard queue gauges exist for every shard, 0..3.
  for (int k = 0; k < 4; ++k) {
    std::string want =
        "tcomp_shard_queue_depth{shard=\"" + std::to_string(k) + "\"}";
    EXPECT_NE(after.find(want), std::string::npos) << want;
  }
}

}  // namespace
}  // namespace tcomp
