#include "core/buddy.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;
using testing_util::MakeSnapshot;
using testing_util::RandomSnapshot;

/// Every object in exactly one buddy; centers and radii consistent with
/// member coordinates (center = mean; radius ≥ exact max distance is
/// allowed right after merges, but never smaller).
void CheckInvariants(const BuddySet& buddies, const Snapshot& snapshot) {
  std::map<ObjectId, int> seen;
  for (const Buddy& b : buddies.buddies()) {
    ASSERT_FALSE(b.members.empty());
    Point sum{};
    for (ObjectId o : b.members) {
      ++seen[o];
      size_t idx = snapshot.IndexOf(o);
      ASSERT_NE(idx, Snapshot::kNpos);
      sum = sum + snapshot.pos(idx);
    }
    Point center = b.center();
    EXPECT_NEAR(center.x, sum.x / b.members.size(), 1e-6);
    EXPECT_NEAR(center.y, sum.y / b.members.size(), 1e-6);
    for (ObjectId o : b.members) {
      double d = Distance(snapshot.pos(snapshot.IndexOf(o)), center);
      EXPECT_LE(d, b.radius + 1e-6)
          << "member " << o << " outside stored radius";
    }
  }
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(seen[snapshot.id(i)], 1)
        << "object " << snapshot.id(i) << " not in exactly one buddy";
  }
}

TEST(BuddySetTest, InitializeCoversAllObjects) {
  Pcg32 rng(3);
  Snapshot s = ClusteredSnapshot(5, 10, 10, 100.0, 1.0, rng);
  BuddySet buddies(2.0);
  buddies.Initialize(s);
  CheckInvariants(buddies, s);
}

TEST(BuddySetTest, InitializeRespectsRadiusThreshold) {
  Pcg32 rng(4);
  Snapshot s = RandomSnapshot(100, 50.0, rng);
  BuddySet buddies(1.5);
  buddies.Initialize(s);
  for (const Buddy& b : buddies.buddies()) {
    EXPECT_LE(b.radius, 1.5 + 1e-9);
  }
}

TEST(BuddySetTest, TightPairBecomesOneBuddy) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.5, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  EXPECT_EQ(buddies.buddies()[0].members, (ObjectSet{0, 1}));
  EXPECT_NEAR(buddies.buddies()[0].radius, 0.25, 1e-9);
}

TEST(BuddySetTest, DistantObjectsStaySingletons) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0}, {1, 10.0, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s);
  EXPECT_EQ(buddies.buddies().size(), 2u);
}

TEST(BuddySetTest, SplitWhenMemberDrifts) {
  Snapshot s1 = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.5, 0.0}, {2, 1.0, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s1);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  BuddyId original = buddies.buddies()[0].id;

  // Object 2 drifts far away. The drift drags the stale center with it,
  // so objects 0 and 1 split out first (in id order) and re-merge in the
  // merge phase — two split operations total, ending with buddies
  // {0,1} and {2}.
  Snapshot s2 = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.5, 0.0}, {2, 8.0, 0.0}});
  BuddyMaintenanceStats stats;
  buddies.Update(s2, &stats);
  CheckInvariants(buddies, s2);
  EXPECT_EQ(stats.splits, 2);
  ASSERT_EQ(buddies.buddies().size(), 2u);
  // The original id retired (its membership changed).
  for (const Buddy& b : buddies.buddies()) {
    EXPECT_NE(b.id, original);
  }
  EXPECT_EQ(buddies.retired_ids(), (std::vector<BuddyId>{original}));
}

TEST(BuddySetTest, MergeWhenBuddiesApproach) {
  Snapshot s1 = MakeSnapshot({{0, 0.0, 0.0}, {1, 10.0, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s1);
  ASSERT_EQ(buddies.buddies().size(), 2u);

  Snapshot s2 = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.8, 0.0}});
  BuddyMaintenanceStats stats;
  buddies.Update(s2, &stats);
  EXPECT_EQ(stats.merges, 1);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  EXPECT_EQ(buddies.buddies()[0].members, (ObjectSet{0, 1}));
  EXPECT_EQ(buddies.retired_ids().size(), 2u);
}

TEST(BuddySetTest, UnchangedBuddyKeepsId) {
  Snapshot s1 = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.5, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s1);
  BuddyId id = buddies.buddies()[0].id;

  // The pair moves together: same membership, same id.
  Snapshot s2 = MakeSnapshot({{0, 5.0, 5.0}, {1, 5.5, 5.0}});
  BuddyMaintenanceStats stats;
  buddies.Update(s2, &stats);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  EXPECT_EQ(buddies.buddies()[0].id, id);
  EXPECT_EQ(stats.unchanged, 1);
  EXPECT_TRUE(buddies.retired_ids().empty());
  Point c = buddies.buddies()[0].center();
  EXPECT_NEAR(c.x, 5.25, 1e-9);
  EXPECT_NEAR(c.y, 5.0, 1e-9);
}

TEST(BuddySetTest, NewObjectBecomesSingleton) {
  Snapshot s1 = MakeSnapshot({{0, 0.0, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s1);
  Snapshot s2 = MakeSnapshot({{0, 0.0, 0.0}, {5, 30.0, 30.0}});
  buddies.Update(s2, nullptr);
  CheckInvariants(buddies, s2);
  EXPECT_NE(buddies.FindBuddyOfObject(5), nullptr);
}

TEST(BuddySetTest, FindBuddyLookups) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0}, {1, 0.5, 0.0}, {7, 9.0, 9.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s);
  const Buddy* b0 = buddies.FindBuddyOfObject(0);
  ASSERT_NE(b0, nullptr);
  EXPECT_EQ(b0, buddies.FindBuddyOfObject(1));
  EXPECT_EQ(buddies.FindBuddyOfObject(42), nullptr);
  EXPECT_EQ(buddies.FindBuddyById(b0->id), b0);
  EXPECT_EQ(buddies.FindBuddyById(9999), nullptr);
}

TEST(BuddySetTest, MergeBoundIsConservative) {
  // After a merge the stored radius may overestimate but never
  // underestimate the true radius (the lemmas depend on it).
  Snapshot s1 = MakeSnapshot(
      {{0, 0.0, 0.0}, {1, 0.4, 0.0}, {2, 3.0, 0.0}, {3, 3.4, 0.0}});
  BuddySet buddies(1.0);
  buddies.Initialize(s1);
  ASSERT_EQ(buddies.buddies().size(), 2u);
  Snapshot s2 = MakeSnapshot(
      {{0, 0.0, 0.0}, {1, 0.4, 0.0}, {2, 1.2, 0.0}, {3, 1.6, 0.0}});
  buddies.Update(s2, nullptr);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  const Buddy& merged = buddies.buddies()[0];
  double true_radius = 0.0;
  for (ObjectId o : merged.members) {
    true_radius = std::max(
        true_radius, Distance(s2.pos(s2.IndexOf(o)), merged.center()));
  }
  EXPECT_GE(merged.radius + 1e-9, true_radius);
}

/// Long-run property sweep: invariants hold while a clustered population
/// drifts randomly across many snapshots.
class BuddyMaintenanceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyMaintenanceSweep, InvariantsHoldOverTime) {
  Pcg32 rng(GetParam());
  const int n = 80;
  std::vector<Point> pos(n);
  for (int i = 0; i < n; ++i) {
    // Four loose herds.
    Point base{(i % 4) * 20.0, (i / 4 % 4) * 20.0};
    pos[i] = Point{base.x + rng.NextDouble(-3, 3),
                   base.y + rng.NextDouble(-3, 3)};
  }
  auto snap = [&]() {
    std::vector<ObjectPosition> p;
    for (int i = 0; i < n; ++i) {
      p.push_back(ObjectPosition{static_cast<ObjectId>(i), pos[i]});
    }
    return Snapshot(std::move(p), 1.0);
  };

  BuddySet buddies(2.0);
  Snapshot s = snap();
  buddies.Initialize(s);
  CheckInvariants(buddies, s);
  BuddyMaintenanceStats stats;
  for (int t = 0; t < 30; ++t) {
    for (int i = 0; i < n; ++i) {
      pos[i].x += rng.NextDouble(-1.0, 1.0);
      pos[i].y += rng.NextDouble(-1.0, 1.0);
    }
    s = snap();
    buddies.Update(s, &stats);
    CheckInvariants(buddies, s);
  }
  EXPECT_GT(stats.total, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyMaintenanceSweep,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace tcomp
