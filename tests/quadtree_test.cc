#include "spatial/quadtree.h"

#include <gtest/gtest.h>

#include "core/snapshot.h"
#include "util/random.h"

namespace tcomp {
namespace {

std::vector<ObjectId> BruteSearch(const std::vector<ObjectPosition>& items,
                                  Point center, double radius) {
  std::vector<ObjectId> out;
  for (const ObjectPosition& it : items) {
    if (Distance(it.pos, center) <= radius) out.push_back(it.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectPosition> RandomItems(int n, double extent, Pcg32& rng) {
  std::vector<ObjectPosition> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(ObjectPosition{
        static_cast<ObjectId>(i),
        Point{rng.NextDouble(0, extent), rng.NextDouble(0, extent)}});
  }
  return items;
}

TEST(QuadTreeTest, EmptyAndBasicOps) {
  QuadTree tree({0, 0}, 100.0);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Search({50, 50}, 100).empty());
  EXPECT_FALSE(tree.Delete(1, {10, 10}));
  tree.Insert(1, {10, 10});
  tree.Insert(2, {90, 90});
  EXPECT_EQ(tree.Search({10, 10}, 5.0), (std::vector<ObjectId>{1}));
  EXPECT_EQ(tree.Search({50, 50}, 80.0), (std::vector<ObjectId>{1, 2}));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(QuadTreeTest, SplitsAndSearchesMatchBruteForce) {
  Pcg32 rng(1);
  std::vector<ObjectPosition> items = RandomItems(400, 200.0, rng);
  QuadTree tree({0, 0}, 200.0, /*bucket_capacity=*/8);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  EXPECT_EQ(tree.size(), 400u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int round = 0; round < 100; ++round) {
    Point c{rng.NextDouble(0, 200), rng.NextDouble(0, 200)};
    double r = rng.NextDouble(1.0, 25.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(items, c, r));
  }
}

TEST(QuadTreeTest, DeleteAndCollapse) {
  Pcg32 rng(2);
  std::vector<ObjectPosition> items = RandomItems(300, 100.0, rng);
  QuadTree tree({0, 0}, 100.0, 8);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  std::vector<ObjectPosition> kept;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(tree.Delete(items[i].id, items[i].pos));
    } else {
      kept.push_back(items[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  EXPECT_TRUE(tree.CheckInvariants());
  for (int round = 0; round < 60; ++round) {
    Point c{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    double r = rng.NextDouble(1.0, 15.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(kept, c, r));
  }
}

TEST(QuadTreeTest, UpdateTracksMovingPoints) {
  Pcg32 rng(3);
  std::vector<ObjectPosition> items = RandomItems(200, 150.0, rng);
  QuadTree tree({0, 0}, 150.0, 8);
  for (const ObjectPosition& it : items) tree.Insert(it.id, it.pos);
  for (int step = 0; step < 5; ++step) {
    for (ObjectPosition& it : items) {
      Point to{std::clamp(it.pos.x + rng.NextDouble(-4, 4), 0.0, 150.0),
               std::clamp(it.pos.y + rng.NextDouble(-4, 4), 0.0, 150.0)};
      ASSERT_TRUE(tree.Update(it.id, it.pos, to));
      it.pos = to;
    }
    ASSERT_TRUE(tree.CheckInvariants());
  }
  for (int round = 0; round < 50; ++round) {
    Point c{rng.NextDouble(0, 150), rng.NextDouble(0, 150)};
    double r = rng.NextDouble(1.0, 20.0);
    EXPECT_EQ(tree.Search(c, r), BruteSearch(items, c, r));
  }
}

TEST(QuadTreeTest, CoincidentPointsRespectDepthCap) {
  QuadTree tree({0, 0}, 64.0, /*bucket_capacity=*/4, /*max_depth=*/6);
  for (ObjectId id = 0; id < 40; ++id) tree.Insert(id, {10.0, 10.0});
  EXPECT_EQ(tree.size(), 40u);
  EXPECT_EQ(tree.Search({10, 10}, 0.5).size(), 40u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (ObjectId id = 0; id < 40; ++id) {
    EXPECT_TRUE(tree.Delete(id, {10.0, 10.0}));
  }
  EXPECT_EQ(tree.size(), 0u);
}

TEST(QuadTreeTest, OutOfRegionPointsAreClamped) {
  QuadTree tree({0, 0}, 100.0);
  tree.Insert(1, {-50.0, 200.0});  // clamps to (0, 100)
  EXPECT_EQ(tree.Search({0, 100}, 1.0), (std::vector<ObjectId>{1}));
  EXPECT_TRUE(tree.Delete(1, {-50.0, 200.0}));  // same clamp on delete
}

TEST(QuadTreeTest, ClearResets) {
  QuadTree tree({0, 0}, 100.0);
  for (ObjectId id = 0; id < 50; ++id) {
    tree.Insert(id, {id * 1.0, id * 1.0});
  }
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Search({25, 25}, 100).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace tcomp
