#include "core/snapshot.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

TEST(SnapshotTest, SortsById) {
  Snapshot s = MakeSnapshot({{5, 1.0, 2.0}, {2, 3.0, 4.0}, {9, 5.0, 6.0}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.id(0), 2u);
  EXPECT_EQ(s.id(1), 5u);
  EXPECT_EQ(s.id(2), 9u);
  EXPECT_DOUBLE_EQ(s.pos(0).x, 3.0);
  EXPECT_DOUBLE_EQ(s.pos(2).y, 6.0);
}

TEST(SnapshotTest, IndexOfFindsPresentAndAbsent) {
  Snapshot s = MakeSnapshot({{1, 0, 0}, {3, 0, 0}, {7, 0, 0}});
  EXPECT_EQ(s.IndexOf(3), 1u);
  EXPECT_EQ(s.IndexOf(2), Snapshot::kNpos);
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(8));
}

TEST(SnapshotTest, EmptySnapshot) {
  Snapshot s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.IndexOf(0), Snapshot::kNpos);
}

TEST(SnapshotTest, DurationStored) {
  Snapshot s = MakeSnapshot({{0, 0, 0}}, 10.0);
  EXPECT_DOUBLE_EQ(s.duration(), 10.0);
}

TEST(SnapshotTest, TotalRecordsSumsStream) {
  SnapshotStream stream;
  stream.push_back(MakeSnapshot({{0, 0, 0}, {1, 0, 0}}));
  stream.push_back(MakeSnapshot({{0, 0, 0}}));
  EXPECT_EQ(TotalRecords(stream), 3);
}

TEST(PointTest, DistanceMath) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  Point c = (a + b) / 2.0;
  EXPECT_DOUBLE_EQ(c.x, 1.5);
  Point d = b * 2.0 - b;
  EXPECT_DOUBLE_EQ(d.x, 3.0);
  EXPECT_DOUBLE_EQ(d.y, 4.0);
}

}  // namespace
}  // namespace tcomp
