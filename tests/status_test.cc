// Unit tests for util/status.h: Status construction/accessors and
// StatusOr value, move, and converting-construction semantics. StatusOr is
// the error channel for every IO and config path, so its move behavior
// (no silent copies, no value slicing through conversions) is load-bearing.

#include "util/status.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace tcomp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_NE(s.ToString().find("bad epsilon"), std::string::npos);
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Wrapper(int x) {
  TCOMP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Wrapper(1).ok());
  Status s = Wrapper(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("no such flag"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no such flag");
}

TEST(StatusOrTest, ImplicitFromValueAndStatus) {
  // Both implicit conversions compile in return position — the pattern
  // every parser in the codebase relies on.
  auto parse = [](bool good) -> StatusOr<std::string> {
    if (good) return std::string("value");
    return Status::InvalidArgument("bad");
  };
  EXPECT_TRUE(parse(true).ok());
  EXPECT_FALSE(parse(false).ok());
}

TEST(StatusOrTest, RvalueValueMovesOut) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
  // The moved-from holder must be empty (moved, not copied).
  EXPECT_TRUE(result.value().empty());  // NOLINT(bugprone-use-after-move)
}

TEST(StatusOrTest, MoveOnlyValueType) {
  // StatusOr must work with move-only types end to end.
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, MutableValueReference) {
  StatusOr<std::string> result(std::string("abc"));
  result.value() += "def";
  EXPECT_EQ(result.value(), "abcdef");
}

TEST(StatusOrTest, ConvertingCopyFromCompatibleType) {
  StatusOr<const char*> narrow("hello");
  StatusOr<std::string> wide(narrow);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value(), "hello");
}

TEST(StatusOrTest, ConvertingCopyPropagatesError) {
  StatusOr<const char*> narrow(Status::IoError("disk gone"));
  StatusOr<std::string> wide(narrow);
  EXPECT_FALSE(wide.ok());
  EXPECT_EQ(wide.status().code(), StatusCode::kIoError);
  EXPECT_EQ(wide.status().message(), "disk gone");
}

TEST(StatusOrTest, ConvertingMoveFromCompatibleType) {
  StatusOr<std::unique_ptr<int>> inner(std::make_unique<int>(9));
  // unique_ptr<int> → shared_ptr<int> is a move-only conversion: this
  // compiles only if the converting constructor really moves.
  StatusOr<std::shared_ptr<int>> outer(std::move(inner));
  ASSERT_TRUE(outer.ok());
  ASSERT_NE(outer.value(), nullptr);
  EXPECT_EQ(*outer.value(), 9);
}

TEST(StatusOrTest, NodiscardEnforcedAtCompileTime) {
  // Compile-time property, asserted here as documentation: Status and
  // StatusOr carry [[nodiscard]], so `FailIfNegative(-1);` as a bare
  // statement does not compile (-Werror=unused-result is always on).
  // Runtime check: an explicitly acknowledged drop still works.
  (void)FailIfNegative(-1);  // regression guard for the (void) idiom
  SUCCEED();
}

}  // namespace
}  // namespace tcomp
