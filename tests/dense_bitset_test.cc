#include "util/dense_bitset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.h"
#include "util/set_signature.h"
#include "util/sorted_ops.h"

namespace tcomp {
namespace {

using IdVec = std::vector<uint32_t>;
using IdSet = std::set<uint32_t>;

IdVec ToVec(const IdSet& s) { return IdVec(s.begin(), s.end()); }

/// Draws a sorted unique set from [0, universe). Shape picks degenerate
/// cases deliberately: the kernels must behave on empty, singleton,
/// identical, and disjoint inputs, not just typical ones.
IdVec RandomSet(Pcg32& rng, uint32_t universe, int shape) {
  IdVec out;
  switch (shape) {
    case 0:  // empty
      break;
    case 1:  // singleton
      out.push_back(rng.NextBounded(universe));
      break;
    case 2: {  // dense block
      uint32_t len = 1 + rng.NextBounded(universe / 2);
      uint32_t start = rng.NextBounded(universe - len);
      for (uint32_t i = 0; i < len; ++i) out.push_back(start + i);
      break;
    }
    default: {  // Bernoulli scatter
      double p = 0.05 + 0.9 * rng.NextDouble();
      for (uint32_t i = 0; i < universe; ++i) {
        if (rng.NextBernoulli(p)) out.push_back(i);
      }
      break;
    }
  }
  return out;
}

TEST(DenseBitsetTest, BasicSetTestClear) {
  DenseBitset b(130);
  EXPECT_EQ(b.universe(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.ToSorted(), (IdVec{0, 64, 129}));
}

TEST(DenseBitsetTest, OutOfUniverseIdsAreAbsent) {
  DenseBitset b(10);
  b.SetSparse(IdVec{3, 7, 50, 900});  // 50 and 900 don't fit: skipped
  EXPECT_FALSE(b.Test(50));
  EXPECT_FALSE(b.Test(900));
  EXPECT_EQ(b.ToSorted(), (IdVec{3, 7}));
  b.ClearSparse(IdVec{3, 50});  // clearing an unrepresentable id: no-op
  EXPECT_EQ(b.ToSorted(), (IdVec{7}));
}

TEST(DenseBitsetTest, EmptyUniverse) {
  DenseBitset b(0);
  EXPECT_FALSE(b.Test(0));
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.ToSorted().empty());
  b.SetSparse(IdVec{1, 2});  // nothing representable
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DenseBitsetTest, MismatchedUniverses) {
  DenseBitset small(70);
  small.SetSparse(IdVec{1, 65, 69});
  DenseBitset big(300);
  big.SetSparse(IdVec{1, 65, 200});

  DenseBitset inter = small;
  inter.IntersectWith(big);
  EXPECT_EQ(inter.ToSorted(), (IdVec{1, 65}));

  DenseBitset uni = small;
  uni.UnionWith(big);
  EXPECT_EQ(uni.universe(), 300u);
  EXPECT_EQ(uni.ToSorted(), (IdVec{1, 65, 69, 200}));

  DenseBitset diff = big;
  diff.SubtractWith(small);
  EXPECT_EQ(diff.ToSorted(), (IdVec{200}));

  EXPECT_FALSE(small.IsSubsetOf(big));  // 69 missing from big
  EXPECT_TRUE(inter.IsSubsetOf(big));
  EXPECT_TRUE(small.Intersects(big));
  EXPECT_EQ(small.IntersectCount(big), 2u);
}

TEST(DenseBitsetTest, ProbeHelpersStopAtUniverse) {
  DenseBitset bits(100);
  bits.SetSparse(IdVec{2, 40, 99});
  IdVec probe{2, 40, 99, 150, 200};  // tail beyond the universe
  IdVec out;
  IntersectInto(probe, bits, &out);
  EXPECT_EQ(out, (IdVec{2, 40, 99}));
  EXPECT_EQ(IntersectCountWith(probe, bits), 3u);
  EXPECT_TRUE(IntersectsWith(probe, bits));
  EXPECT_FALSE(IntersectsWith(IdVec{150, 151}, bits));
  EXPECT_FALSE(IntersectsWith(IdVec{}, bits));
}

TEST(DenseBitsetTest, KernelToggleRoundTrips) {
  EXPECT_TRUE(BitsetKernelsEnabled());  // library default
  SetBitsetKernelsEnabled(false);
  EXPECT_FALSE(BitsetKernelsEnabled());
  SetBitsetKernelsEnabled(true);
  EXPECT_TRUE(BitsetKernelsEnabled());
}

TEST(DenseBitsetTest, ProfitabilityHeuristic) {
  EXPECT_FALSE(BitsetProfitable(0, 0));            // empty universe
  EXPECT_TRUE(BitsetProfitable(1000, 500));        // dense ids
  EXPECT_TRUE(BitsetProfitable(64, 1));            // ≥1 member per word
  EXPECT_FALSE(BitsetProfitable(65, 1));           // too sparse
  EXPECT_FALSE(BitsetProfitable(kMaxBitsetUniverse + 1,
                                kMaxBitsetUniverse));  // capped
}

/// Oracle sweep: every kernel must agree with std::set algebra across
/// thousands of generated pairs, including empty/disjoint/identical/
/// singleton sets and mismatched universes.
class DenseBitsetOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DenseBitsetOracleTest, MatchesSetAlgebra) {
  Pcg32 rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const uint32_t ua = 16 + rng.NextBounded(240);
    IdVec a = RandomSet(rng, ua, static_cast<int>(rng.NextBounded(4)));
    // A bitset must cover its own set, so force ub = ua when reusing `a`.
    const bool identical = rng.NextBernoulli(0.05);
    const uint32_t ub = identical || rng.NextBernoulli(0.5)
                            ? ua
                            : 16 + rng.NextBounded(240);
    IdVec b = identical ? a
                        : RandomSet(rng, ub, static_cast<int>(rng.NextBounded(4)));

    IdSet sa(a.begin(), a.end());
    IdSet sb(b.begin(), b.end());
    IdSet inter_ref, union_ref, diff_ref;
    for (uint32_t x : sa) {
      if (sb.count(x)) inter_ref.insert(x);
      if (!sb.count(x)) diff_ref.insert(x);
      union_ref.insert(x);
    }
    union_ref.insert(sb.begin(), sb.end());

    DenseBitset ba(ua);
    ba.AssignSorted(a);
    DenseBitset bb(ub);
    bb.AssignSorted(b);

    // Round-trip and population.
    EXPECT_EQ(ba.ToSorted(), a);
    EXPECT_EQ(ba.Count(), a.size());

    // Word kernels.
    DenseBitset t = ba;
    t.IntersectWith(bb);
    EXPECT_EQ(t.ToSorted(), ToVec(inter_ref));
    t = ba;
    t.UnionWith(bb);
    EXPECT_EQ(t.ToSorted(), ToVec(union_ref));
    t = ba;
    t.SubtractWith(bb);
    EXPECT_EQ(t.ToSorted(), ToVec(diff_ref));
    EXPECT_EQ(ba.IsSubsetOf(bb), diff_ref.empty());
    EXPECT_EQ(ba.Intersects(bb), !inter_ref.empty());
    EXPECT_EQ(ba.IntersectCount(bb), inter_ref.size());

    // Sparse probe kernels against the sorted-merge reference.
    IdVec out;
    IntersectInto(a, bb, &out);
    EXPECT_EQ(out, SortedIntersect(a, b));
    EXPECT_EQ(IntersectCountWith(a, bb), inter_ref.size());
    EXPECT_EQ(IntersectsWith(a, bb), !inter_ref.empty());

    // Incremental clear matches subtraction.
    t = ba;
    t.ClearSparse(SortedIntersect(a, b));
    EXPECT_EQ(t.ToSorted(), ToVec(diff_ref));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseBitsetOracleTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

/// The signature prefilter must never reject a true subset, and should
/// reject most non-subsets without touching elements.
class SetSignatureOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetSignatureOracleTest, NeverFalseRejects) {
  Pcg32 rng(GetParam());
  int non_subsets = 0;
  int prefilter_rejects = 0;
  for (int round = 0; round < 2000; ++round) {
    const uint32_t universe = 8 + rng.NextBounded(200);
    IdVec outer = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
    IdVec inner;
    if (rng.NextBernoulli(0.5)) {
      // True subset: sample from outer.
      for (uint32_t x : outer) {
        if (rng.NextBernoulli(0.6)) inner.push_back(x);
      }
    } else {
      inner = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
    }
    const bool is_subset = SortedIsSubset(inner, outer);
    const bool maybe = SetSignature::Of(inner).MaybeSubsetOf(
        SetSignature::Of(outer));
    if (is_subset) {
      EXPECT_TRUE(maybe) << "prefilter rejected a true subset";
    } else {
      ++non_subsets;
      if (!maybe) ++prefilter_rejects;
    }
  }
  // Effectiveness floor: the filter exists to cut work. Random non-subset
  // pairs should be rejected well over half the time.
  EXPECT_GT(non_subsets, 100);
  EXPECT_GT(prefilter_rejects * 2, non_subsets);
}

TEST_P(SetSignatureOracleTest, IntersectsNeverFalseRejects) {
  Pcg32 rng(GetParam() + 100);
  int disjoint_pairs = 0;
  int prefilter_rejects = 0;
  for (int round = 0; round < 2000; ++round) {
    const uint32_t universe = 8 + rng.NextBounded(400);
    IdVec a = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
    IdVec b;
    if (rng.NextBernoulli(0.4)) {
      // Guaranteed-disjoint pair: ids from a non-overlapping range.
      IdVec raw =
          RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
      for (uint32_t x : raw) b.push_back(x + universe);
    } else {
      b = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
    }
    const bool intersects = SortedIntersects(a, b);
    const bool maybe =
        SetSignature::Of(a).MaybeIntersects(SetSignature::Of(b));
    if (intersects) {
      EXPECT_TRUE(maybe) << "prefilter dismissed an intersecting pair";
    } else {
      ++disjoint_pairs;
      if (!maybe) ++prefilter_rejects;
    }
  }
  // The shifted-range arm alone guarantees plenty of disjoint pairs, and
  // the bounds check must dismiss all of those.
  EXPECT_GT(disjoint_pairs, 100);
  EXPECT_GT(prefilter_rejects * 2, disjoint_pairs);
}

TEST_P(SetSignatureOracleTest, IncrementalCompositionMatchesOf) {
  Pcg32 rng(GetParam() + 200);
  for (int round = 0; round < 500; ++round) {
    const uint32_t universe = 8 + rng.NextBounded(300);
    IdVec a = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));
    IdVec b = RandomSet(rng, universe, static_cast<int>(rng.NextBounded(4)));

    // AddId over any permutation-free element order equals Of().
    SetSignature incremental;
    for (uint32_t x : a) incremental.AddId(x);
    EXPECT_EQ(incremental, SetSignature::Of(a));

    // MergeUnion equals the signature of the set union — the invariant
    // BuddyIndex::ComposeSignature relies on.
    IdVec both = a;
    both.insert(both.end(), b.begin(), b.end());
    SortUnique(&both);
    SetSignature merged = SetSignature::Of(a);
    merged.MergeUnion(SetSignature::Of(b));
    EXPECT_EQ(merged, SetSignature::Of(both));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetSignatureOracleTest,
                         ::testing::Values(21, 22, 23));

TEST(SetSignatureTest, EmptySetEdgeCases) {
  const SetSignature empty = SetSignature::Of({});
  const SetSignature some = SetSignature::Of({1, 2, 3});
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(some.empty());
  EXPECT_TRUE(empty.MaybeSubsetOf(some));
  EXPECT_TRUE(empty.MaybeSubsetOf(empty));
  EXPECT_FALSE(some.MaybeSubsetOf(empty));
  EXPECT_TRUE(some.MaybeSubsetOf(some));
  // ∅ intersects nothing, including itself.
  EXPECT_FALSE(empty.MaybeIntersects(some));
  EXPECT_FALSE(some.MaybeIntersects(empty));
  EXPECT_FALSE(empty.MaybeIntersects(empty));
  EXPECT_TRUE(some.MaybeIntersects(some));
  // MergeUnion with empty is the identity, in both directions.
  SetSignature merged = some;
  merged.MergeUnion(empty);
  EXPECT_EQ(merged, some);
  SetSignature from_empty = empty;
  from_empty.MergeUnion(some);
  EXPECT_EQ(from_empty, some);
}

}  // namespace
}  // namespace tcomp
