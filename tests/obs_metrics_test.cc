// Unit and concurrency tests for the observability layer (src/obs):
// histogram bucket math with hand-computed quantile answers, registry
// identity/determinism, and a multi-threaded recorder/reader hammer that
// the TSan lane instruments (registered with LABELS tsan).
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace tcomp {
namespace {

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwoMicros) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundSeconds(0), 1e-6);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundSeconds(1), 2e-6);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperBoundSeconds(10),
                   1024e-6);
  // Last finite bound covers ≈ 67 s — far above any per-snapshot stage.
  EXPECT_GT(LatencyHistogram::BucketUpperBoundSeconds(
                LatencyHistogram::kBucketCount - 1),
            60.0);
}

TEST(LatencyHistogramTest, RecordsIntoExpectedBuckets) {
  LatencyHistogram h;
  h.Record(0.5e-6);   // < 1 µs → bucket 0
  h.Record(1e-6);     // [1, 2) µs → bucket 1
  h.Record(3e-6);     // [2, 4) µs → bucket 2
  h.Record(100e-6);   // [64, 128) µs → bucket 7
  h.Record(100.0);    // 1e8 µs ≥ 2^26 µs → overflow slot
  LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[7], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kBucketCount], 1u);
  EXPECT_EQ(snap.count, 5u);
}

TEST(LatencyHistogramTest, NegativeAndNanClampToZeroBucket) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::nan(""));
  LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum_seconds, 0.0);
}

TEST(LatencyHistogramTest, QuantilesAreExactBucketUpperBounds) {
  LatencyHistogram h;
  // 50 samples in bucket 0 (< 1 µs) and 50 in bucket 2 ([2, 4) µs).
  for (int i = 0; i < 50; ++i) h.Record(0.5e-6);
  for (int i = 0; i < 50; ++i) h.Record(3e-6);
  LatencyHistogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.count, 100u);
  // rank(0.50) = 50 → cumulative through bucket 0 is 50 → UB 1 µs.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 1e-6);
  // rank(0.95) = 95 and rank(0.99) = 99 → bucket 2 → UB 4 µs. 0.95 × 100
  // is inexact in binary; the quantile must still land on rank 95.
  EXPECT_DOUBLE_EQ(snap.p95(), 4e-6);
  EXPECT_DOUBLE_EQ(snap.p99(), 4e-6);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 4e-6);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1e-6);  // rank clamps up to 1
}

TEST(LatencyHistogramTest, QuantileOfEmptyHistogramIsZero) {
  LatencyHistogram h;
  LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_DOUBLE_EQ(snap.p50(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.0);
}

TEST(LatencyHistogramTest, OverflowSamplesYieldInfiniteQuantile) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(100.0);  // all overflow
  LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_TRUE(std::isinf(snap.p50()));
  EXPECT_GT(snap.p50(), 0.0);
}

TEST(LatencyHistogramTest, SumAccumulatesSeconds) {
  LatencyHistogram h;
  h.Record(1e-3);
  h.Record(2e-3);
  LatencyHistogram::Snapshot snap = h.Snap();
  EXPECT_NEAR(snap.sum_seconds, 3e-3, 1e-8);
}

TEST(MetricsRegistryTest, SameFamilyAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("tcomp_x_total", "", "help");
  MetricCounter* b = registry.GetCounter("tcomp_x_total", "", "other");
  EXPECT_EQ(a, b);
  MetricCounter* c =
      registry.GetCounter("tcomp_x_total", "k=\"v\"", "help");
  EXPECT_NE(a, c);
  LatencyHistogram* h1 =
      registry.GetHistogram("tcomp_h_seconds", "stage=\"a\"", "help");
  LatencyHistogram* h2 =
      registry.GetHistogram("tcomp_h_seconds", "stage=\"a\"", "help");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, ExpositionIsNameSortedAndDeterministic) {
  auto build = [](MetricsRegistry* r) {
    r->GetCounter("tcomp_zeta_total", "", "z")->Add(3);
    r->GetCounter("tcomp_alpha_total", "", "a")->Add(1);
    r->GetGauge("tcomp_mid_gauge", "", "m")->Set(-7);
    r->GetHistogram("tcomp_lat_seconds", "stage=\"b\"", "h")->Record(1e-6);
    r->GetHistogram("tcomp_lat_seconds", "stage=\"a\"", "h")->Record(1e-6);
  };
  MetricsRegistry r1, r2;
  build(&r1);
  build(&r2);
  std::string t1 = r1.ExpositionText();
  EXPECT_EQ(t1, r2.ExpositionText());
  // Families appear in lexicographic name order…
  EXPECT_LT(t1.find("tcomp_alpha_total"), t1.find("tcomp_lat_seconds"));
  EXPECT_LT(t1.find("tcomp_lat_seconds"), t1.find("tcomp_mid_gauge"));
  EXPECT_LT(t1.find("tcomp_mid_gauge"), t1.find("tcomp_zeta_total"));
  // …and series within a family in label order.
  EXPECT_LT(t1.find("stage=\"a\""), t1.find("stage=\"b\""));
  EXPECT_NE(t1.find("tcomp_mid_gauge -7"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketLinesAreCumulative) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("tcomp_lat_seconds", "", "h");
  h->Record(0.5e-6);  // bucket 0
  h->Record(3e-6);    // bucket 2
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("tcomp_lat_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("tcomp_lat_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tcomp_lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tcomp_lat_seconds_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonTextIsWellFormedEnoughToEyeball) {
  MetricsRegistry registry;
  registry.GetCounter("tcomp_a_total", "", "a")->Add(5);
  registry.GetHistogram("tcomp_h_seconds", "", "h")->Record(100.0);
  std::string json = registry.JsonText();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
  EXPECT_NE(json.find("\"tcomp_a_total\": 5"), std::string::npos);
  // Overflow quantiles must not emit the non-JSON token "+Inf".
  EXPECT_EQ(json.find("+Inf"), std::string::npos);
  EXPECT_NE(json.find("1e999"), std::string::npos);
}

TEST(StageTimerTest, SinkPreRegistersEveryStageHistogram) {
  MetricsRegistry registry;
  MetricsStageSink sink(&registry);
  std::string text = registry.ExpositionText();
  for (int i = 0; i < kStageCount; ++i) {
    Stage stage = static_cast<Stage>(i);
    std::string needle =
        std::string("stage=\"") + StageName(stage) + "\"";
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing series for stage " << StageName(stage);
  }
  sink.RecordStage(Stage::kCluster, 5e-6);
  EXPECT_EQ(sink.histogram(Stage::kCluster)->Snap().count, 1u);
  EXPECT_DOUBLE_EQ(sink.last_seconds(Stage::kCluster), 5e-6);
}

TEST(StageTimerTest, TwoSinksExposeIdenticalSeriesSets) {
  MetricsRegistry r1, r2;
  MetricsStageSink s1(&r1);
  MetricsStageSink s2(&r2);
  EXPECT_EQ(r1.ExpositionText(), r2.ExpositionText());
}

// Concurrency hammer: recorders on counters and histograms race a reader
// that renders exposition text. TSan (this test carries the tsan label)
// verifies the relaxed-atomic recording plan is race-free; the final
// counts verify no increment is lost.
TEST(MetricsRegistryTest, ConcurrentRecordersAndReader) {
  MetricsRegistry registry;
  MetricCounter* counter =
      registry.GetCounter("tcomp_hammer_total", "", "hammer");
  LatencyHistogram* hist =
      registry.GetHistogram("tcomp_hammer_seconds", "", "hammer");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string text = registry.ExpositionText();
      EXPECT_FALSE(text.empty());
      std::string json = registry.JsonText();
      EXPECT_FALSE(json.empty());
      // Late registration must also be safe while rendering races on.
      registry.GetGauge("tcomp_hammer_gauge", "", "hammer")->Set(1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Record(static_cast<double>((t + i) % 64) * 1e-6);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  LatencyHistogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (int i = 0; i <= LatencyHistogram::kBucketCount; ++i) {
    bucket_total += snap.buckets[i];
  }
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace tcomp
