// Regression tests for the epoll event-loop front-end and the socket
// layer underneath it: nonblocking short-write handling, fd hygiene on
// rejected accepts, graceful drain toward mid-frame binary clients,
// kill+resume identity across a mid-batch shutdown, per-client write
// backpressure, and connection admission control.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "data/group_model.h"
#include "data/trajectory_io.h"
#include "service/admission.h"
#include "service/binary_protocol.h"
#include "service/pipeline.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"

namespace tcomp {
namespace {

ServicePipelineOptions SmallPipelineOptions() {
  ServicePipelineOptions opts;
  opts.algorithm = Algorithm::kBuddy;
  opts.params.cluster.epsilon = 18.0;
  opts.params.cluster.mu = 2;
  opts.params.size_threshold = 3;
  opts.params.duration_threshold = 2;
  opts.window.window_length = 60.0;
  return opts;
}

/// Open descriptors of this process, via /proc/self/fd.
int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Subtract ".", "..", and the directory stream's own fd.
  return count - 3;
}

/// Blocking binary-protocol client against a live server.
class FrameClient {
 public:
  void Connect(uint16_t port) {
    ASSERT_TRUE(StreamSocket::Connect(port, 2000, &sock_).ok());
  }
  void Send(const std::string& data) {
    ASSERT_TRUE(sock_.WriteAll(data, 5000).ok());
  }
  /// Reads one response frame (fails the test on timeout/corruption).
  BinaryResponse ReadFrame() {
    BinaryResponse response;
    for (;;) {
      std::string error;
      BinaryResponseReader::Result r = reader_.Next(&response, &error);
      if (r == BinaryResponseReader::Result::kFrame) return response;
      EXPECT_NE(r, BinaryResponseReader::Result::kBad) << error;
      if (r == BinaryResponseReader::Result::kBad) return response;
      char buf[4096];
      size_t n = 0;
      Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (!s.ok() || n == 0) return response;
      reader_.Feed(buf, n);
    }
  }
  /// Reads until EOF; returns every complete frame seen on the way.
  std::vector<BinaryResponse> ReadFramesUntilEof() {
    std::vector<BinaryResponse> frames;
    for (;;) {
      char buf[4096];
      size_t n = 0;
      Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
      if (!s.ok() || n == 0) break;
      reader_.Feed(buf, n);
      for (;;) {
        BinaryResponse response;
        std::string error;
        if (reader_.Next(&response, &error) !=
            BinaryResponseReader::Result::kFrame) {
          break;
        }
        frames.push_back(response);
      }
    }
    return frames;
  }
  void Close() { sock_.Close(); }
  StreamSocket* socket() { return &sock_; }

 private:
  StreamSocket sock_;
  BinaryResponseReader reader_;
};

/// Blocking text client (mirrors the one in service_protocol_test).
class LineClient {
 public:
  void Connect(uint16_t port) {
    ASSERT_TRUE(StreamSocket::Connect(port, 2000, &sock_).ok());
  }
  Status TryConnect(uint16_t port) {
    return StreamSocket::Connect(port, 2000, &sock_);
  }
  void Send(const std::string& data) {
    ASSERT_TRUE(sock_.WriteAll(data, 5000).ok());
  }
  Status SendStatus(const std::string& data) {
    return sock_.WriteAll(data, 5000);
  }
  /// Reads one line; empty on EOF.
  std::string ReadLine() {
    std::string line;
    for (;;) {
      LineFramer::Result r = framer_.Next(&line);
      if (r == LineFramer::Result::kLine) return line;
      char buf[4096];
      size_t n = 0;
      Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
      if (!s.ok() || n == 0) return std::string();
      framer_.Feed(buf, n);
    }
  }
  /// True when the peer closes without sending another byte.
  bool ReadEof() {
    char buf[64];
    size_t n = 0;
    Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
    return s.ok() && n == 0;
  }
  /// True when the connection is down — orderly EOF or a reset. A
  /// server that closes while our unread request bytes sit in its
  /// receive buffer produces RST, not FIN, so both count as closed.
  bool PeerClosed() {
    char buf[64];
    size_t n = 0;
    Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
    return !s.ok() || n == 0;
  }
  void Close() { sock_.Close(); }

 private:
  StreamSocket sock_;
  LineFramer framer_{1 << 20};
};

// ---------------------------------------------------------------------
// Bugfix regression: WriteAll on a nonblocking descriptor used to treat
// EAGAIN as a hard IoError and bail mid-payload. With a slow reader the
// send buffer fills within a few hundred KiB, so any large write off the
// event loop (e.g. the shutdown drain) hit it immediately.

TEST(SocketRegressionTest, WriteAllOnNonblockingFdSurvivesSlowReader) {
  ListenSocket listener;
  ASSERT_TRUE(ListenSocket::Listen(0, &listener).ok());
  ASSERT_TRUE(listener.SetNonBlocking(true).ok());

  StreamSocket client;
  ASSERT_TRUE(StreamSocket::Connect(listener.port(), 2000, &client).ok());

  StreamSocket accepted;
  bool would_block = true;
  for (int i = 0; i < 200 && would_block; ++i) {
    ASSERT_TRUE(listener.AcceptNonBlocking(&accepted, &would_block).ok());
    if (would_block) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(accepted.valid());  // comes back O_NONBLOCK already

  // 2 MiB of patterned payload: far past any socket buffer, so the
  // writer must hit EAGAIN many times while the reader dawdles.
  std::string payload(2 * 1024 * 1024, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 23));
  }

  Status write_status;
  std::thread writer([&] {
    write_status = accepted.WriteAll(payload, /*timeout_ms=*/20000);
  });

  std::string received;
  received.reserve(payload.size());
  char buf[16384];
  while (received.size() < payload.size()) {
    size_t n = 0;
    Status s = client.Read(buf, sizeof(buf), 5000, &n);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(n, 0u);
    received.append(buf, n);
    // The throttle that provokes EAGAIN on the writer side.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();

  EXPECT_TRUE(write_status.ok()) << write_status.ToString();
  // Byte-identical, in order — EAGAIN handling must resume at the exact
  // unwritten suffix, never skip or repeat a chunk.
  EXPECT_EQ(received, payload);
}

// ---------------------------------------------------------------------
// Bugfix regression: every path that disposes of an accepted connection
// (connection cap, admission breaker) must close the accepted fd. A leak
// of one fd per rejected connection kills a long-running daemon slowly.

TEST(ServerRegressionTest, RejectedConnectionsDoNotLeakFds) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  sopts.max_connections = 1;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single slot and prove it is registered.
  LineClient occupant;
  occupant.Connect(server.port());
  occupant.Send("FLUSH\n");
  EXPECT_EQ(occupant.ReadLine(), "OK flushed");

  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  constexpr int kChurn = 25;
  for (int i = 0; i < kChurn; ++i) {
    LineClient rejected;
    rejected.Connect(server.port());
    // The server sends a best-effort error line and closes immediately.
    std::string line = rejected.ReadLine();
    EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    EXPECT_TRUE(rejected.ReadEof());
    rejected.Close();
  }

  // Give the loop a beat to finish its close bookkeeping, then the fd
  // table must be exactly back at the baseline.
  for (int i = 0; i < 100 && CountOpenFds() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(CountOpenFds(), baseline);
  EXPECT_EQ(server.Counters().conns_rejected_limit, kChurn);

  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
}

TEST(ServerRegressionTest, EmfileAcceptBacksOffAndRecoversWithoutLeak) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Prove the loop is serving before squeezing the fd table.
  LineClient warmup;
  warmup.Connect(server.port());
  warmup.Send("FLUSH\n");
  EXPECT_EQ(warmup.ReadLine(), "OK flushed");
  warmup.Close();
  for (int i = 0; i < 100 && server.SessionHandles() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  // Lower RLIMIT_NOFILE so exactly one more descriptor fits: the client
  // side of the next connection takes it, and the server's accept4 gets
  // EMFILE — the backoff path, which must close nothing it doesn't own
  // and must re-arm once the pressure lifts.
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  struct rlimit tight = old_limit;
  tight.rlim_cur = static_cast<rlim_t>(baseline + 1);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

  {
    LineClient starved;
    Status cs = starved.TryConnect(server.port());
    // The TCP handshake completes against the backlog even though the
    // server cannot accept; give the loop time to hit EMFILE and back
    // off. (If even our client socket failed, the limit is doing its
    // job; the server-side assertions below still hold.)
    for (int i = 0; i < 100 && server.Counters().accept_backoffs == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(server.Counters().accept_backoffs, 1);
    if (cs.ok()) starved.Close();
  }

  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &old_limit), 0);

  // With fds available again the listener must re-arm and serve. The
  // backoff ceiling is 1 s, so a couple of seconds covers the re-arm.
  bool served = false;
  for (int attempt = 0; attempt < 40 && !served; ++attempt) {
    LineClient retry;
    if (!retry.TryConnect(server.port()).ok()) continue;
    if (!retry.SendStatus("FLUSH\n").ok()) continue;
    served = (retry.ReadLine() == "OK flushed");
    retry.Close();
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(served);

  // No fd may have leaked across the starvation episode.
  for (int i = 0; i < 100 && CountOpenFds() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(CountOpenFds(), baseline);

  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
}

// ---------------------------------------------------------------------
// Bugfix regression: a binary client caught mid-frame by SHUTDOWN /
// SIGTERM must receive one complete SHUTDOWN frame — not a truncated
// response, not a silent close — and nothing of the partial frame may be
// admitted.

TEST(ServerRegressionTest, DrainSendsCleanShutdownFrameToMidFrameClient) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<TrajectoryRecord> records;
  for (int i = 0; i < 8; ++i) {
    TrajectoryRecord r;
    r.object = static_cast<ObjectId>(i);
    r.timestamp = 10.0;
    r.pos.x = 100.0 + i;
    r.pos.y = 50.0;
    records.push_back(r);
  }

  FrameClient client;
  client.Connect(server.port());
  // One complete batch, acknowledged...
  client.Send(EncodeIngestBatch(records.data(), 4));
  BinaryResponse ack = client.ReadFrame();
  EXPECT_EQ(ack.type, static_cast<uint8_t>(BinaryResponseType::kOk));
  EXPECT_EQ(ack.value, 4u);

  // ...then a deliberately truncated one: full header, half the records.
  std::string partial = EncodeIngestBatch(records.data() + 4, 4);
  partial.resize(kBinaryRequestHeaderBytes + 2 * kBinaryRecordBytes);
  client.Send(partial);
  // Wait until the server has actually consumed the partial bytes.
  for (int i = 0; i < 100 && server.Counters().binary_frames < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.RequestStop();
  server.Wait();

  std::vector<BinaryResponse> frames = client.ReadFramesUntilEof();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type,
            static_cast<uint8_t>(BinaryResponseType::kShutdown));
  EXPECT_NE(frames[0].payload.find("re-send"), std::string::npos);

  EXPECT_TRUE(pipeline.Stop().ok());
  // Only the acknowledged batch was admitted; the partial frame wasn't.
  EXPECT_EQ(pipeline.Stats().records_ingested, 4);
}

// ---------------------------------------------------------------------
// Kill + resume across a mid-batch shutdown must be byte-identical to an
// uninterrupted run when the client honors the re-send contract.

std::vector<TrajectoryRecord> ScenarioRecords() {
  GroupModelOptions opts;
  opts.num_objects = 40;
  opts.num_snapshots = 8;
  opts.area_size = 900.0;
  opts.group_speed = 1.0;
  opts.free_speed = 1.5;
  opts.member_jitter = 0.8;
  opts.seed = 17;
  return StreamToRecords(GenerateGroupStream(opts).stream,
                         /*seconds_per_snapshot=*/60.0);
}

ServicePipelineOptions ScenarioPipelineOptions() {
  ServicePipelineOptions opts;
  opts.algorithm = Algorithm::kBuddy;
  opts.params.cluster.epsilon = 30.0;
  opts.params.cluster.mu = 2;
  opts.params.size_threshold = 3;
  opts.params.duration_threshold = 2;
  opts.window.window_length = 60.0;
  return opts;
}

/// Streams record batches through a binary connection and returns the
/// QUERY companions payload after a FLUSH.
std::string IngestAndQuery(uint16_t port,
                           const std::vector<TrajectoryRecord>& records,
                           size_t batch) {
  FrameClient client;
  client.Connect(port);
  for (size_t i = 0; i < records.size(); i += batch) {
    size_t n = std::min(batch, records.size() - i);
    client.Send(EncodeIngestBatch(&records[i], n));
    BinaryResponse ack = client.ReadFrame();
    EXPECT_EQ(ack.type, static_cast<uint8_t>(BinaryResponseType::kOk));
    EXPECT_EQ(ack.value, n);
  }
  client.Send(EncodeBinaryRequest(BinaryRequestType::kFlush, 0, ""));
  EXPECT_EQ(client.ReadFrame().type,
            static_cast<uint8_t>(BinaryResponseType::kOk));
  client.Send(EncodeBinaryRequest(
      BinaryRequestType::kQuery,
      static_cast<uint8_t>(Request::QueryKind::kCompanions), ""));
  BinaryResponse result = client.ReadFrame();
  EXPECT_EQ(result.type, static_cast<uint8_t>(BinaryResponseType::kOk));
  return result.payload;
}

TEST(ServerRegressionTest, KillResumeMidBinaryBatchIsByteIdentical) {
  std::vector<TrajectoryRecord> records = ScenarioRecords();
  ASSERT_GT(records.size(), 100u);
  // Split at a window boundary (t = 240 = snapshot 4 of 8): graceful
  // shutdown closes the open window, so identity requires the admitted
  // prefix to end exactly where a window does — which is precisely what
  // the frame-atomic admission contract guarantees when the client
  // aligns its batches to its own records.
  size_t split = 0;
  while (split < records.size() && records[split].timestamp < 240.0) {
    ++split;
  }
  ASSERT_GT(split, 0u);
  ASSERT_LT(split, records.size());
  std::vector<TrajectoryRecord> first(records.begin(),
                                      records.begin() + split);
  std::vector<TrajectoryRecord> rest(records.begin() + split,
                                     records.end());

  // Reference: one uninterrupted serve run.
  std::string reference;
  {
    ServicePipeline pipeline(ScenarioPipelineOptions());
    ASSERT_TRUE(pipeline.Start().ok());
    CompanionServer server(&pipeline, ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    reference = IngestAndQuery(server.port(), records, 64);
    server.RequestStop();
    server.Wait();
    ASSERT_TRUE(pipeline.Stop().ok());
  }
  ASSERT_FALSE(reference.empty());

  // Killed run: stream the first half, then get caught mid-frame on the
  // second, honor the SHUTDOWN frame's re-send contract after resume.
  std::string ckpt = ::testing::TempDir() + "/eventloop_resume.ckpt";
  std::filesystem::remove(ckpt);
  ServicePipelineOptions popts = ScenarioPipelineOptions();
  popts.checkpoint_path = ckpt;
  {
    ServicePipeline pipeline(popts);
    ASSERT_TRUE(pipeline.Start().ok());
    CompanionServer server(&pipeline, ServerOptions());
    ASSERT_TRUE(server.Start().ok());

    FrameClient client;
    client.Connect(server.port());
    for (size_t i = 0; i < first.size(); i += 64) {
      size_t n = std::min<size_t>(64, first.size() - i);
      client.Send(EncodeIngestBatch(&first[i], n));
      BinaryResponse ack = client.ReadFrame();
      ASSERT_EQ(ack.value, n);
    }
    // The kill lands mid-INGEST-batch: half a frame of the second part
    // is on the wire when the server stops.
    std::string partial =
        EncodeIngestBatch(rest.data(), std::min<size_t>(64, rest.size()));
    partial.resize(partial.size() / 2);
    client.Send(partial);
    for (int i = 0;
         i < 100 && server.Counters().binary_records <
                        static_cast<int64_t>(first.size());
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.RequestStop();
    server.Wait();
    std::vector<BinaryResponse> frames = client.ReadFramesUntilEof();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type,
              static_cast<uint8_t>(BinaryResponseType::kShutdown));
    ASSERT_TRUE(pipeline.Stop().ok());  // writes the final checkpoint
  }

  // Resumed run: a fresh pipeline restores the checkpoint; the client
  // re-sends the entire un-acknowledged remainder.
  std::string resumed;
  {
    ServicePipeline pipeline(popts);
    ASSERT_TRUE(pipeline.Start().ok());
    EXPECT_TRUE(pipeline.Stats().resumed);
    CompanionServer server(&pipeline, ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    resumed = IngestAndQuery(server.port(), rest, 64);
    server.RequestStop();
    server.Wait();
    ASSERT_TRUE(pipeline.Stop().ok());
  }

  EXPECT_EQ(resumed, reference);
  std::filesystem::remove(ckpt);
}

// ---------------------------------------------------------------------
// Per-client write backpressure: a client that stops reading while
// requesting large responses gets its reads paused (never the loop), and
// everything is delivered once it drains.

TEST(ServerBackpressureTest, SlowConsumerIsPausedThenFullyServed) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  sopts.write_backpressure_bytes = 8 * 1024;  // tiny window
  sopts.write_timeout_ms = 30000;             // must not trip here
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Pipeline many metrics queries without reading a byte: each response
  // is several KiB of exposition text, so the pending output crosses the
  // window almost immediately.
  constexpr int kQueries = 64;
  LineClient client;
  client.Connect(server.port());
  std::string burst;
  for (int i = 0; i < kQueries; ++i) burst += "QUERY metrics\n";
  client.Send(burst);

  for (int i = 0; i < 200 && server.Counters().write_stalls == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.Counters().write_stalls, 1);

  // A second client must be completely unaffected by the stalled one.
  LineClient bystander;
  bystander.Connect(server.port());
  bystander.Send("FLUSH\n");
  EXPECT_EQ(bystander.ReadLine(), "OK flushed");
  bystander.Close();

  // Now drain: every one of the pipelined responses must arrive, well
  // formed and in order.
  int ok_headers = 0;
  int dots = 0;
  while (dots < kQueries) {
    std::string line = client.ReadLine();
    ASSERT_FALSE(line.empty() && dots < kQueries) << "premature EOF";
    if (line.rfind("OK ", 0) == 0) ++ok_headers;
    if (line == ".") ++dots;
  }
  EXPECT_EQ(ok_headers, kQueries);

  client.Close();
  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
}

// ---------------------------------------------------------------------
// AdmissionController: pure decision logic.

TEST(AdmissionControllerTest, DisabledControllerNeverTrips) {
  AdmissionController controller{AdmissionOptions{}};
  EXPECT_FALSE(controller.enabled());
  AdmissionSample sample;
  sample.offered = 1000;
  sample.refused = 1000;
  sample.p99_close_ms = 1e9;
  controller.Update(sample);
  controller.Update(sample);
  EXPECT_FALSE(controller.overloaded());
}

TEST(AdmissionControllerTest, ShedRateWindowTripsAndRecovers) {
  AdmissionOptions options;
  options.max_shed_rate = 0.2;
  options.min_window_records = 64;
  AdmissionController controller(options);
  ASSERT_TRUE(controller.enabled());

  AdmissionSample sample;
  controller.Update(sample);  // anchors the baseline
  EXPECT_FALSE(controller.overloaded());

  // 100 offered, 50 refused since the baseline: 50% shed, over the 20%
  // threshold once the 64-record window closes.
  sample.offered = 100;
  sample.refused = 50;
  controller.Update(sample);
  EXPECT_TRUE(controller.overloaded());
  EXPECT_DOUBLE_EQ(controller.shed_rate(), 0.5);

  // Below the window minimum nothing re-evaluates: still overloaded.
  sample.offered = 130;
  sample.refused = 50;
  controller.Update(sample);
  EXPECT_TRUE(controller.overloaded());

  // A clean full window closes the breaker.
  sample.offered = 300;
  sample.refused = 50;
  controller.Update(sample);
  EXPECT_FALSE(controller.overloaded());
  EXPECT_DOUBLE_EQ(controller.shed_rate(), 0.0);
}

TEST(AdmissionControllerTest, LatencyTriggerAndCounterResetHandling) {
  AdmissionOptions options;
  options.max_p99_ms = 10.0;
  AdmissionController controller(options);

  AdmissionSample sample;
  sample.p99_close_ms = 25.0;
  controller.Update(sample);
  EXPECT_TRUE(controller.overloaded());
  sample.p99_close_ms = 5.0;
  controller.Update(sample);
  EXPECT_FALSE(controller.overloaded());

  // A counter reset (service restart) must re-anchor, not divide by a
  // negative delta.
  options.max_shed_rate = 0.5;
  AdmissionController shed_controller(options);
  AdmissionSample big;
  big.offered = 10000;
  big.refused = 9000;
  shed_controller.Update(big);
  AdmissionSample reset;  // counters back at zero
  shed_controller.Update(reset);
  EXPECT_FALSE(shed_controller.overloaded());
  EXPECT_DOUBLE_EQ(shed_controller.shed_rate(), 0.0);
}

TEST(AdmissionControllerTest, PolicyParsingRoundTrips) {
  AdmissionPolicy policy;
  EXPECT_TRUE(ParseAdmissionPolicy("reject", &policy).ok());
  EXPECT_EQ(policy, AdmissionPolicy::kReject);
  EXPECT_TRUE(ParseAdmissionPolicy("shed", &policy).ok());
  EXPECT_EQ(policy, AdmissionPolicy::kShed);
  EXPECT_FALSE(ParseAdmissionPolicy("drop", &policy).ok());
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kReject), "reject");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kShed), "shed");
}

// ---------------------------------------------------------------------
// Admission breaker end to end: once the pipeline's p99 snapshot-close
// gauge crosses the configured ceiling, new connections are turned away
// (kReject: error line; kShed: silent close) while existing ones live.

TEST(ServerAdmissionTest, OverloadedServerRejectsOnlyNewConnections) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  // Any snapshot close at all trips this ceiling.
  sopts.admission.max_p99_ms = 1e-9;
  sopts.admission.policy = AdmissionPolicy::kReject;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  LineClient established;
  established.Connect(server.port());
  // Close a snapshot so the latency histogram has a sample.
  established.Send("INGEST 1 10 100 100\n");
  EXPECT_EQ(established.ReadLine(), "OK");
  established.Send("FLUSH\n");
  EXPECT_EQ(established.ReadLine(), "OK flushed");

  // The admission sampler runs on the housekeeping tick; wait for the
  // breaker to observe the new p99.
  bool rejected = false;
  std::string reject_line;
  for (int attempt = 0; attempt < 100 && !rejected; ++attempt) {
    LineClient newcomer;
    newcomer.Connect(server.port());
    newcomer.Send("FLUSH\n");
    std::string line = newcomer.ReadLine();
    if (line.rfind("ERR ", 0) == 0) {
      rejected = true;
      reject_line = line;
      // The server closes right after writing the ERR line, while our
      // FLUSH bytes may still sit unread in its receive buffer — that
      // close arrives as RST, not FIN, so accept either form of EOF.
      EXPECT_TRUE(newcomer.PeerClosed());
    }
    newcomer.Close();
    if (!rejected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(rejected);
  EXPECT_NE(reject_line.find("overloaded"), std::string::npos);
  EXPECT_GE(server.Counters().conns_rejected_admission, 1);

  // The established connection is untouched by the breaker.
  established.Send("FLUSH\n");
  EXPECT_EQ(established.ReadLine(), "OK flushed");
  established.Close();

  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
}

}  // namespace
}  // namespace tcomp
