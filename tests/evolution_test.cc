#include "core/evolution.h"

#include <gtest/gtest.h>

#include "core/smart_closed.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using Kind = EvolutionEvent::Kind;
using testing_util::MakeSnapshot;

CompanionEpisode Ep(ObjectSet objects, int64_t begin, int64_t end) {
  return CompanionEpisode{std::move(objects), begin, end};
}

TEST(EvolutionTest, ContinuationWithMembershipDrift) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3, 4}, 0, 10),
      Ep({1, 2, 3, 5}, 11, 20),  // 4 left, 5 joined
  };
  std::vector<EvolutionEvent> events = AnalyzeEvolution(eps);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Kind::kContinuation);
  EXPECT_EQ(events[0].sources, (std::vector<size_t>{0}));
  EXPECT_EQ(events[0].targets, (std::vector<size_t>{1}));
  EXPECT_EQ(events[0].snapshot, 11);
}

TEST(EvolutionTest, MergeOfTwoGroups) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3}, 0, 9),
      Ep({7, 8, 9}, 0, 9),
      Ep({1, 2, 3, 7, 8, 9}, 10, 20),
  };
  std::vector<EvolutionEvent> events = AnalyzeEvolution(eps);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Kind::kMerge);
  EXPECT_EQ(events[0].sources, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(events[0].targets, (std::vector<size_t>{2}));
}

TEST(EvolutionTest, SplitIntoTwoGroups) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3, 7, 8, 9}, 0, 9),
      Ep({1, 2, 3}, 10, 20),
      Ep({7, 8, 9}, 11, 20),
  };
  std::vector<EvolutionEvent> events = AnalyzeEvolution(eps);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Kind::kSplit);
  EXPECT_EQ(events[0].sources, (std::vector<size_t>{0}));
  EXPECT_EQ(events[0].targets, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(events[0].snapshot, 10);
}

TEST(EvolutionTest, GapBeyondThresholdBreaksLineage) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3}, 0, 5),
      Ep({1, 2, 3}, 20, 30),  // re-forms much later
  };
  EvolutionOptions options;
  options.max_gap = 2;
  EXPECT_TRUE(AnalyzeEvolution(eps, options).empty());
  options.max_gap = 15;
  EXPECT_EQ(AnalyzeEvolution(eps, options).size(), 1u);
}

TEST(EvolutionTest, OverlapThresholdFiltersWeakLinks) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3, 4, 5, 6}, 0, 9),
      Ep({6, 10, 11, 12}, 10, 20),  // only one shared member
  };
  EvolutionOptions options;
  options.min_overlap = 0.5;
  EXPECT_TRUE(AnalyzeEvolution(eps, options).empty());
  options.min_overlap = 0.2;
  EXPECT_EQ(AnalyzeEvolution(eps, options).size(), 1u);
}

TEST(EvolutionTest, UnrelatedEpisodesProduceNothing) {
  std::vector<CompanionEpisode> eps = {
      Ep({1, 2, 3}, 0, 9),
      Ep({10, 11, 12}, 10, 20),
  };
  EXPECT_TRUE(AnalyzeEvolution(eps).empty());
  EXPECT_TRUE(AnalyzeEvolution({}).empty());
}

TEST(EvolutionTest, EndToEndSplitDetectedFromStream) {
  // A six-object group travels 12 snapshots, then splits into two trios
  // that keep traveling.
  SnapshotStream stream;
  for (int t = 0; t < 30; ++t) {
    std::vector<std::tuple<ObjectId, double, double>> items;
    bool together = t < 12;
    for (ObjectId o = 0; o < 3; ++o) {
      items.push_back({o, o * 0.4, 0.0});
    }
    for (ObjectId o = 3; o < 6; ++o) {
      double y = together ? 0.0 : 30.0;
      items.push_back({o, (o - 3) * 0.4 + (together ? 1.2 : 0.0), y});
    }
    stream.push_back(MakeSnapshot(items));
  }

  DiscoveryParams params;
  params.cluster.epsilon = 0.5;
  params.cluster.mu = 2;
  params.size_threshold = 3;
  params.duration_threshold = 5;

  SmartClosedDiscoverer sc(params);
  CompanionTimeline timeline;
  timeline.Track(&sc);
  for (const Snapshot& s : stream) sc.ProcessSnapshot(s, nullptr);

  EvolutionOptions options;
  options.max_gap = 6;  // episodes end up to δt-1 before the transition
  std::vector<EvolutionEvent> events =
      AnalyzeEvolution(timeline.Episodes(), options);
  bool split_found = false;
  for (const EvolutionEvent& e : events) {
    if (e.kind == Kind::kSplit) split_found = true;
  }
  EXPECT_TRUE(split_found);
}

}  // namespace
}  // namespace tcomp
