"""Makes both invocation forms work:

    python3 tools/analyze ...      (directory: sys.path[0] is the package
                                    dir, so bootstrap the parent first)
    python3 -m analyze ...         (from tools/: normal package __main__)
"""

import os
import sys

if __package__ is None or __package__ == "":
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from analyze.cli import main
else:
    from .cli import main

sys.exit(main(sys.argv[1:]))
