"""Whole-project model for tcomp-analyze.

Holds every FileModel, the `#include` edge graph between project files,
the architectural layer map, and a function index for the one-level call
inlining the lock-order pass performs. This is the piece the regex
engine structurally could not have: the bugs these passes exist to catch
(lock-order inversions, hash-order walks on the shard path, upward
includes) are cross-file by nature.
"""

import os

from .filemodel import FileModel

# Directories scanned, mirroring the regex linter's scope. Library scope
# is src/ + tools/; randomness hygiene also covers tests/benches because
# a nondeterministic test input invalidates the differential suites.
SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
CPP_EXTS = (".cc", ".h", ".cpp")

# Architectural layering (DESIGN §1.9). An include from a module to one
# with a *higher* layer number is an upward include and a finding; same
# layer is allowed (core ↔ stream ↔ spatial collaborate as peers).
# bench/, examples/, and tests/ are consumers and may include anything.
LAYERS = {
    "util": 0,
    "core": 1, "stream": 1, "spatial": 1, "data": 1, "network": 1,
    "shard": 2, "obs": 2, "baselines": 2, "eval": 2,
    "service": 3,
    "tools": 4,
}
LAYER_NAMES = {
    0: "util",
    1: "core/stream/spatial/data/network",
    2: "shard/obs/baselines/eval",
    3: "service",
    4: "tools",
}


def module_of(rel):
    """Architectural module of a repo-relative path: `src/core/x.h` →
    `core`, `tools/x.cc` → `tools`, `tests/...` → `tests` (unlayered)."""
    parts = rel.replace("\\", "/").split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1]
    return parts[0]


class Project:
    def __init__(self, root):
        self.root = root
        self.files = {}  # rel (posix) -> FileModel
        for top in SCAN_DIRS:
            top_dir = os.path.join(root, top)
            for dirpath, dirnames, filenames in os.walk(top_dir):
                dirnames.sort()
                for name in sorted(filenames):
                    if not name.endswith(CPP_EXTS):
                        continue
                    path = os.path.join(dirpath, name)
                    rel = os.path.relpath(path, root).replace(os.sep, "/")
                    with open(path, encoding="utf-8") as f:
                        text = f.read()
                    self.files[rel] = FileModel(rel, text)
        self._build_include_graph()
        self._index_functions()

    # ---- includes ------------------------------------------------------

    def _resolve_include(self, rel, target):
        """Repo-relative path of an include target, or None for system /
        out-of-tree headers. Project includes are root-relative (the build
        adds src/ and the repo root to the include path) or sibling."""
        target = target.replace("\\", "/")
        for base in ("src/" + target, target,
                     rel.rsplit("/", 1)[0] + "/" + target):
            norm = os.path.normpath(base).replace(os.sep, "/")
            if norm in self.files:
                return norm
        return None

    def _build_include_graph(self):
        self.include_edges = {}  # rel -> [(line, target_rel, raw_target)]
        for rel, fm in self.files.items():
            edges = []
            for line, target in fm.includes:
                resolved = self._resolve_include(rel, target)
                edges.append((line, resolved, target))
            self.include_edges[rel] = edges

    # ---- functions -----------------------------------------------------

    def _index_functions(self):
        self.functions_by_qual = {}   # "Class::Name" or "Name" -> [fn]
        self.functions_by_name = {}   # "Name" -> [(rel, fn)]
        self.fn_file = {}             # id(fn) -> rel
        for rel, fm in self.files.items():
            for fn in fm.functions:
                self.functions_by_qual.setdefault(fn.qual, []).append(fn)
                self.functions_by_name.setdefault(fn.name, []).append(
                    (rel, fn))
                self.fn_file[id(fn)] = rel

    def paired_header(self, rel):
        """The FileModel of `x.h` for `x.cc`, if scanned: member
        declarations live there."""
        if rel.endswith(".cc") or rel.endswith(".cpp"):
            stem = rel.rsplit(".", 1)[0]
            return self.files.get(stem + ".h")
        return None

    def known_names(self, rel, kind):
        """File-wide declared names of `kind` ('unordered' | 'atomic' |
        'mutex') for `rel`, folding in the paired header."""
        fm = self.files[rel]
        names = set(getattr(fm, kind + "_vars"))
        paired = self.paired_header(rel)
        if paired:
            names |= getattr(paired, kind + "_vars")
        return names
