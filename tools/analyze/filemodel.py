"""Per-file declaration/scope model for tcomp-analyze.

Built once per translation unit from the token stream:

  * includes           `#include "..."` targets with line numbers
  * comments_by_line   comment text per line (allow() annotations live in
                       comments, so suppression scanning is literal-proof)
  * unordered_vars     names declared as std::unordered_{map,set,...}
  * atomic_vars        names declared as std::atomic<...>
  * mutex_vars         names declared as std::{mutex,shared_mutex,...}
  * functions          definitions with qualified names and body token
                       ranges (namespace/class scopes are tracked so an
                       in-class definition is attributed to its class)
  * range_fors         (line, range-expression tokens) per range-based for

The model is deliberately a linter's model, not a compiler's: name sets
are file-wide (plus the paired header for a .cc, folded in by the
project layer), and overload resolution is by name. That is the same
contract the regex engine had — but scoped to real tokens, so strings,
comments, and raw literals can no longer confuse it.
"""

import re

from . import lexer

_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

_UNORDERED = frozenset(
    ["unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset"])
_MUTEXES = frozenset(
    ["mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
     "recursive_timed_mutex"])
_NOT_FUNC_NAMES = frozenset(
    ["if", "for", "while", "switch", "catch", "return", "sizeof",
     "alignof", "decltype", "static_assert", "operator", "defined"])


class Function:
    __slots__ = ("name", "cls", "qual", "line", "body")

    def __init__(self, name, cls, line, body):
        self.name = name
        self.cls = cls  # enclosing/explicit class name, or ""
        self.qual = (cls + "::" + name) if cls else name
        self.line = line
        self.body = body  # list of code tokens, excluding the outer braces

    def __repr__(self):
        return "Function(%s@%d)" % (self.qual, self.line)


class FileModel:
    def __init__(self, rel, text):
        self.rel = rel.replace("\\", "/")
        self.tokens = lexer.tokenize(text)
        self.code = lexer.code_tokens(self.tokens)
        self.comments_by_line = {}
        self.includes = []
        for tok in self.tokens:
            if tok.kind == "comment":
                self.comments_by_line.setdefault(tok.line, []).append(
                    tok.text)
            elif tok.kind == "directive":
                m = _INCLUDE_RE.search(tok.text)
                if m:
                    self.includes.append((tok.line, m.group(1)))
        self.unordered_vars = set()
        self.atomic_vars = set()
        self.mutex_vars = set()
        self._scan_declarations()
        self.functions = []
        self._scan_structure()
        self.range_fors = []
        for i, tok in enumerate(self.code):
            if tok.kind == "ident" and tok.text == "for":
                rf = _parse_range_for(self.code, i)
                if rf:
                    self.range_fors.append(rf)

    # ---- declarations -------------------------------------------------

    def _scan_declarations(self):
        code = self.code
        n = len(code)
        i = 0
        while i < n:
            tok = code[i]
            if tok.kind != "ident":
                i += 1
                continue
            if tok.text in _UNORDERED or tok.text == "atomic":
                j = _skip_template_args(code, i + 1)
                name = _decl_name_after(code, j)
                if name:
                    if tok.text == "atomic":
                        self.atomic_vars.add(name)
                    else:
                        self.unordered_vars.add(name)
                i = j
                continue
            if tok.text in _MUTEXES:
                name = _decl_name_after(code, i + 1)
                if name:
                    self.mutex_vars.add(name)
            i += 1

    # ---- scopes, functions, range-fors --------------------------------

    def _scan_structure(self):
        code = self.code
        n = len(code)
        class_stack = []   # (name, depth at which its brace opened)
        brace_kinds = []   # parallel to open braces: class|enum|fn|other
        last_boundary = -1  # index of last ; { } at non-function scope
        pending_class = None
        i = 0
        while i < n:
            tok = code[i]
            if tok.kind == "ident" and tok.text in ("class", "struct"):
                prev = code[i - 1] if i > 0 else None
                if not (prev and prev.kind == "ident"
                        and prev.text == "enum"):
                    name = _class_name_ahead(code, i + 1)
                    if name:
                        pending_class = name
                i += 1
                continue
            if tok.text == "{" and tok.kind == "punct":
                kind = "other"
                if pending_class:
                    kind = "class"
                    class_stack.append((pending_class, len(brace_kinds)))
                    pending_class = None
                elif "fn" not in brace_kinds:
                    fn = self._try_function(code, last_boundary, i,
                                            class_stack)
                    if fn is not None:
                        kind = "fn"
                        body_start = i + 1
                        close = _match_brace(code, i)
                        fn.body = code[body_start:close]
                        self.functions.append(fn)
                        i = close  # the '}' is processed next iteration
                        brace_kinds.append(kind)
                        last_boundary = i
                        continue
                brace_kinds.append(kind)
                last_boundary = i
                i += 1
                continue
            if tok.text == "}" and tok.kind == "punct":
                if brace_kinds:
                    kind = brace_kinds.pop()
                    if (kind == "class" and class_stack
                            and class_stack[-1][1] == len(brace_kinds)):
                        class_stack.pop()
                last_boundary = i
                i += 1
                continue
            if tok.text == ";" and tok.kind == "punct":
                pending_class = None  # forward declaration
                last_boundary = i
                i += 1
                continue
            i += 1

    def _try_function(self, code, last_boundary, brace_idx, class_stack):
        """Is the token run (last_boundary, brace_idx) a function header?
        Returns a Function (body filled by the caller) or None."""
        window = code[last_boundary + 1:brace_idx]
        if not window:
            return None
        # Find the parameter list: the first top-level '(' in the window.
        depth = 0
        paren = -1
        for k, tok in enumerate(window):
            if tok.kind != "punct":
                continue
            if tok.text == "<":
                depth += 1
            elif tok.text == ">":
                depth -= 1
            elif tok.text == ">>":
                depth -= 2
            elif tok.text == "(" and depth <= 0:
                paren = k
                break
        if paren <= 0:
            return None
        name_tok = window[paren - 1]
        if name_tok.kind != "ident" or name_tok.text in _NOT_FUNC_NAMES:
            return None
        # Assignments / initializers (`Foo x = Bar(...)`, `int x(3)`)
        # are not definitions; neither is anything containing `=` before
        # the parameter list (excluding `operator=` which we skip anyway).
        for tok in window[:paren]:
            if tok.kind == "punct" and tok.text in ("=", "{"):
                return None
        cls = ""
        if (paren >= 3 and window[paren - 2].text == "::"
                and window[paren - 3].kind == "ident"):
            cls = window[paren - 3].text
        elif class_stack:
            cls = class_stack[-1][0]
        return Function(name_tok.text, cls, name_tok.line, [])


# ---- shared token helpers ---------------------------------------------


def _skip_template_args(code, i):
    """`i` points just past the template name. Skips `<...>` if present,
    counting angle characters so `>>` closes two levels. Returns the index
    after the closing `>` (or `i` unchanged if no argument list)."""
    if i >= len(code) or code[i].text != "<":
        return i
    depth = 0
    while i < len(code):
        t = code[i].text
        if code[i].kind == "punct" and t in ("<", ">", ">>"):
            depth += 1 if t == "<" else (-1 if t == ">" else -2)
            if depth <= 0:
                return i + 1
        i += 1
    return i


def _decl_name_after(code, i):
    """After a type spelling, returns the declared variable name, or None
    when the type appears in a non-declaration position (template arg,
    function return, cast)."""
    while i < len(code) and code[i].kind == "punct" and code[i].text in (
            "&", "*"):
        i += 1
    if i >= len(code) or code[i].kind != "ident":
        return None
    name = code[i].text
    j = i + 1
    if j < len(code) and code[j].kind == "punct":
        nxt = code[j].text
        # Declarator must be terminated/initialized, not called or scoped:
        # `unordered_map<K,V> m;` / `= {...}` / `m{...}` / `m[N]` / `m(...)`
        # (direct-init) / `, next` are declarations; `name::` or `name <`
        # or `name .` are uses of the type name elsewhere.
        if nxt in (";", "=", "{", "[", ",", ")", "("):
            return name
    return None


def _class_name_ahead(code, i):
    """Name of the class/struct introduced at `i`, if this introduces a
    definition (a `{` is seen before `;`)."""
    name = None
    depth = 0
    while i < len(code):
        tok = code[i]
        if tok.kind == "ident" and name is None and tok.text not in (
                "final", "alignas"):
            name = tok.text
        if tok.kind == "punct":
            if tok.text in ("(", "["):
                depth += 1
            elif tok.text in (")", "]"):
                depth -= 1
            elif tok.text == "{" and depth == 0:
                return name
            elif tok.text == ";" and depth == 0:
                return None
            elif tok.text == "=" and depth == 0:
                return None  # alias or default member initializer
        i += 1
    return None


def _match_brace(code, i):
    """`code[i]` is `{`; returns the index of the matching `}` (or the
    last index on unbalanced input)."""
    depth = 0
    n = len(code)
    while i < n:
        if code[i].kind == "punct":
            if code[i].text == "{":
                depth += 1
            elif code[i].text == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _parse_range_for(code, i):
    """`code[i]` is the `for` ident. Returns (line, expr tokens) for a
    range-based for, else None."""
    j = i + 1
    if j >= len(code) or code[j].text != "(":
        return None
    depth = 0
    colon = -1
    k = j
    n = len(code)
    while k < n:
        tok = code[k]
        if tok.kind == "punct":
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth -= 1
                if depth == 0:
                    break
            elif tok.text == ";" and depth == 1:
                return None  # classic three-clause for
            elif tok.text == ":" and depth == 1 and colon < 0:
                colon = k
        k += 1
    if colon < 0 or k >= n:
        return None
    return (code[i].line, code[colon + 1:k])
