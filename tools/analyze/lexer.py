"""C++ lexer for tcomp-analyze.

Produces a flat token stream with line numbers. Unlike the regex core it
replaces, the lexer understands line/block comments, string and character
literals (including escape sequences and raw strings), and preprocessor
directives — so a rule that matches the `throw` *token* can never fire on
a comment that merely mentions throwing, and an `allow()` annotation
inside a string literal can never suppress anything.

Token kinds:
  ident      identifiers and keywords (C++ keywords are not separated:
             passes match on text)
  num        numeric literals (incl. hex, digit separators, suffixes)
  str        string literal (text is the raw source spelling)
  chr        character literal
  punct      operators and punctuation; multi-character operators are
             single tokens (`::`, `->`, `<=`, ...)
  comment    // or /* */ comment, text includes the delimiters
  directive  a whole preprocessor line (with continuations folded in)
"""

from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# Longest-match-first multi-character operators. `>>` stays one token;
# consumers that balance template angle brackets count the characters.
_PUNCTS = (
    "...", "->*", "<=>", "<<=", ">>=",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def _scan_raw_string(text, i):
    """`i` points at the `"` of `R"`. Returns index one past the literal."""
    j = text.find("(", i + 1)
    if j < 0:
        return len(text)
    delim = text[i + 1:j]
    end = text.find(")" + delim + '"', j + 1)
    if end < 0:
        return len(text)
    return end + len(delim) + 2


def _scan_quoted(text, i, quote):
    """`i` points at the opening quote. Returns index one past the close."""
    j = i + 1
    n = len(text)
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote or c == "\n":  # unterminated: stop at EOL
            return j + 1
        j += 1
    return n


def tokenize(text):
    """Returns the full token list for `text` (a translation unit)."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Preprocessor directive: `#` first on its line, runs to an
        # unescaped newline. Comments inside are left verbatim (include
        # extraction only needs the quoted path).
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\n":
                    if text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            tokens.append(Token("directive", text[start:i], start_line))
            continue
        at_line_start = False
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            tokens.append(Token("comment", text[i:j], line))
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            tokens.append(Token("comment", chunk, line))
            line += chunk.count("\n")
            i = j
            continue
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            # Raw / prefixed string literals: R"...", u8R"...", L"..." etc.
            if j < n and text[j] == '"' and word in (
                    "R", "u8R", "uR", "UR", "LR"):
                end = _scan_raw_string(text, j)
                chunk = text[i:end]
                tokens.append(Token("str", chunk, line))
                line += chunk.count("\n")
                i = end
                continue
            if j < n and text[j] == '"' and word in ("u8", "u", "U", "L"):
                end = _scan_quoted(text, j, '"')
                tokens.append(Token("str", text[i:end], line))
                i = end
                continue
            if j < n and text[j] == "'" and word in ("u8", "u", "U", "L"):
                end = _scan_quoted(text, j, "'")
                tokens.append(Token("chr", text[i:end], line))
                i = end
                continue
            tokens.append(Token("ident", word, line))
            i = j
            continue
        if c == '"':
            end = _scan_quoted(text, i, '"')
            tokens.append(Token("str", text[i:end], line))
            i = end
            continue
        if c == "'":
            end = _scan_quoted(text, i, "'")
            tokens.append(Token("chr", text[i:end], line))
            i = end
            continue
        if c in _DIGITS or (c == "." and nxt in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def code_tokens(tokens):
    """Tokens with comments and directives stripped: what passes scan."""
    return [t for t in tokens if t.kind not in ("comment", "directive")]
