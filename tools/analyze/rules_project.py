"""Whole-project passes for tcomp-analyze.

  include-layer   the architectural DAG: util → {core, stream, spatial,
                  data, network} → {shard, obs, baselines, eval} →
                  service → tools. An include that points at a module
                  with a higher layer number is an upward include.
  include-cycle   cycles in the file-level `#include` graph.
  lock-order      mutex acquisition-order consistency: per function,
                  extract the sequence of held-while-acquiring pairs,
                  inline one level of intra-project calls, and flag
                  cycles in the global lock-order graph. This is the
                  pass that catches the PR 5 `Stats()` inversion class:
                  one function takes A then B, another holds B while
                  calling a helper that takes A.

Findings are attributed to concrete source lines so the standard
`allow()` suppression contract applies unchanged.
"""

from .project import LAYERS, LAYER_NAMES, module_of

_GUARD_TYPES = frozenset(
    ["lock_guard", "scoped_lock", "unique_lock", "shared_lock"])
_LOCK_TAGS = frozenset(["adopt_lock", "defer_lock", "try_to_lock", "std"])


# ---- include-layer -----------------------------------------------------


def pass_include_layer(project, report):
    for rel in sorted(project.files):
        src_mod = module_of(rel)
        if src_mod not in LAYERS:
            continue  # bench/examples/tests are consumers: unrestricted
        src_layer = LAYERS[src_mod]
        for line, resolved, raw in project.include_edges[rel]:
            target = resolved if resolved else (
                "src/" + raw if not raw.startswith(
                    ("src/", "tools/")) else raw)
            dst_mod = module_of(target)
            if dst_mod not in LAYERS or dst_mod == src_mod:
                continue
            dst_layer = LAYERS[dst_mod]
            if dst_layer > src_layer:
                report(rel, line, "include-layer",
                       "upward include: %s (layer %d: %s) must not "
                       "include %s (layer %d: %s); invert the dependency "
                       "or move the shared declaration down"
                       % (src_mod, src_layer, LAYER_NAMES[src_layer],
                          dst_mod, dst_layer, LAYER_NAMES[dst_layer]))


# ---- include-cycle -----------------------------------------------------


def pass_include_cycle(project, report):
    graph = {}
    lines = {}
    for rel in project.files:
        outs = []
        for line, resolved, _ in project.include_edges[rel]:
            if resolved is not None:
                outs.append(resolved)
                lines[(rel, resolved)] = line
        graph[rel] = outs
    seen = set()       # fully-explored nodes
    reported = set()   # canonical cycle keys already reported
    for start in sorted(graph):
        if start in seen:
            continue
        stack = [(start, iter(graph[start]))]
        path = [start]
        on_path = {start}
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt in on_path:
                    cycle = path[path.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        edge_line = lines.get((node, nxt), 1)
                        report(node, edge_line, "include-cycle",
                               "#include cycle: %s" % " -> ".join(cycle))
                    continue
                if nxt in seen:
                    continue
                stack.append((nxt, iter(graph[nxt])))
                path.append(nxt)
                on_path.add(nxt)
                advanced = True
                break
            if not advanced:
                seen.add(node)
                on_path.discard(node)
                path.pop()
                stack.pop()


# ---- lock-order --------------------------------------------------------


class _FnLocks:
    """Lock behaviour extracted from one function body."""

    __slots__ = ("fn", "rel", "acquired", "edges", "calls")

    def __init__(self, fn, rel):
        self.fn = fn
        self.rel = rel
        self.acquired = []   # [(mutex_id, line)] every acquisition
        self.edges = []      # [(held_id, new_id, line)] direct nesting
        self.calls = []      # [(callee_name, is_method, [held ids], line)]


def _canon_mutex(expr_tokens, owner):
    """Canonical id of a mutex expression: the tail identifier of the
    access chain, qualified by the enclosing class (or file stem for free
    functions). `g_`-prefixed globals unify across files."""
    idents = [t.text for t in expr_tokens
              if t.kind == "ident" and t.text not in ("this", "std")]
    if not idents:
        return None
    tail = idents[-1]
    if tail.startswith("g_"):
        return "global::" + tail
    return "%s::%s" % (owner, tail)


def _split_args(args):
    parts = []
    cur = []
    depth = 0
    for t in args:
        if t.kind == "punct":
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == "," and depth == 0:
                parts.append(cur)
                cur = []
                continue
        cur.append(t)
    if cur:
        parts.append(cur)
    return parts


def _extract_fn_locks(project, rel, fn, owner, mutex_names):
    from .rules_file import _call_arg_tokens
    from .filemodel import _skip_template_args

    info = _FnLocks(fn, rel)
    code = fn.body
    n = len(code)
    held = []          # [(scope_depth, mutex_id, guard_var or None)]
    guard_mutexes = {}  # guard var -> [mutex ids]
    depth = 0

    def acquire(mid, line):
        for _, held_id, _ in held:
            if held_id != mid:
                info.edges.append((held_id, mid, line))
        info.acquired.append((mid, line))

    i = 0
    while i < n:
        tok = code[i]
        if tok.kind == "punct":
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth -= 1
                while held and held[-1][0] > depth:
                    held.pop()
            i += 1
            continue
        if tok.kind != "ident":
            i += 1
            continue
        if tok.text in _GUARD_TYPES:
            j = _skip_template_args(code, i + 1)
            if j < n and code[j].kind == "ident" and j + 1 < n \
                    and code[j + 1].text == "(":
                var = code[j].text
                args = _call_arg_tokens(code, j + 1)
                deferred = any(t.kind == "ident" and t.text == "defer_lock"
                               for t in args)
                mids = []
                for part in _split_args(args):
                    idents = [t for t in part if t.kind == "ident"
                              and t.text not in _LOCK_TAGS]
                    if not idents:
                        continue
                    mid = _canon_mutex(part, owner)
                    if mid:
                        mids.append(mid)
                guard_mutexes[var] = mids
                if not deferred:
                    for mid in mids:
                        acquire(mid, tok.line)
                        held.append((depth, mid, var))
                i = j + 1
                continue
        if tok.text in ("lock", "unlock") and i > 0 \
                and code[i - 1].text in (".", "->") \
                and i + 1 < n and code[i + 1].text == "(":
            # Receiver chain tail: a guard variable or a raw mutex.
            recv = code[i - 2] if i >= 2 else None
            if recv is not None and recv.kind == "ident":
                name = recv.text
                mids = guard_mutexes.get(name)
                if mids is None and name in mutex_names:
                    mids = [_canon_mutex([recv], owner)]
                if mids:
                    if tok.text == "lock":
                        for mid in mids:
                            acquire(mid, tok.line)
                            held.append((depth, mid, name))
                    else:
                        for mid in mids:
                            for k in range(len(held) - 1, -1, -1):
                                if held[k][1] == mid:
                                    held.pop(k)
                                    break
            i += 2
            continue
        # Intra-project call while holding locks → candidate for
        # one-level inlining.
        if held and i + 1 < n and code[i + 1].text == "(" \
                and tok.text not in _GUARD_TYPES:
            is_method = i > 0 and code[i - 1].text in (".", "->")
            bare = (i == 0 or code[i - 1].text not in
                    (".", "->", "::", "&"))
            if is_method or bare:
                info.calls.append(
                    (tok.text, is_method, [h[1] for h in held], tok.line))
        i += 1
    return info


def _resolve_callee(project, name, cls, fn_infos_by_qual,
                    fn_infos_by_name):
    """Depth-1 call resolution: same-class method first, then a unique
    project-wide name match. Ambiguity means no inlining — a linter
    must miss rather than invent."""
    if cls:
        qual = cls + "::" + name
        infos = fn_infos_by_qual.get(qual)
        if infos:
            return infos
    infos = fn_infos_by_name.get(name)
    if infos and len(infos) == 1:
        return infos
    return None


def pass_lock_order(project, report):
    # Phase 1: per-function lock extraction.
    all_infos = []
    fn_infos_by_qual = {}
    fn_infos_by_name = {}
    for rel in sorted(project.files):
        if not rel.startswith("src/"):
            continue
        fm = project.files[rel]
        mutex_names = project.known_names(rel, "mutex")
        for fn in fm.functions:
            owner = fn.cls if fn.cls else \
                rel.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            info = _extract_fn_locks(project, rel, fn, owner, mutex_names)
            all_infos.append(info)
            fn_infos_by_qual.setdefault(fn.qual, []).append(info)
            fn_infos_by_name.setdefault(fn.name, []).append(info)

    # Phase 2: one-level call inlining — held locks at a call site order
    # before everything the callee acquires.
    edges = {}  # (a, b) -> (rel, line, description)
    for info in all_infos:
        for a, b, line in info.edges:
            edges.setdefault((a, b), (info.rel, line,
                                      "in %s" % info.fn.qual))
        for name, _is_method, held_ids, line in info.calls:
            callees = _resolve_callee(project, name, info.fn.cls,
                                      fn_infos_by_qual, fn_infos_by_name)
            if not callees:
                continue
            for callee in callees:
                if callee.fn.qual == info.fn.qual:
                    continue  # recursion: no self-inlining
                for mid, _ in callee.acquired:
                    for h in held_ids:
                        if h != mid:
                            edges.setdefault(
                                (h, mid),
                                (info.rel, line,
                                 "%s calls %s which acquires %s"
                                 % (info.fn.qual, callee.fn.qual, mid)))

    # Phase 3: cycle detection over the global lock-order graph.
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    for node in graph:
        graph[node].sort()
    for cycle in _find_cycles(graph):
        # Attribute the finding to the lexically first edge of the cycle.
        cycle_edges = [(cycle[k], cycle[k + 1])
                       for k in range(len(cycle) - 1)]
        sites = [edges[e] for e in cycle_edges if e in edges]
        sites.sort()
        rel, line, _ = sites[0]
        detail = "; ".join(
            "%s -> %s (%s:%d, %s)" % (a, b, edges[(a, b)][0],
                                      edges[(a, b)][1], edges[(a, b)][2])
            for a, b in cycle_edges)
        report(rel, line, "lock-order",
               "lock-order cycle — these mutexes are acquired in "
               "conflicting orders and can deadlock: %s" % detail)


def _find_cycles(graph):
    """Yields each elementary cycle's node list (first == last), one per
    strongly connected component, deterministically."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []

    def strongconnect(v):
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = graph.get(node, [])
            for k in range(pi, len(succs)):
                w = succs[k]
                if w not in index:
                    work[-1] = (node, k + 1)
                    work.append((w, 0))
                    recurse = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in graph.get(node, []):
                    sccs.append(sorted(scc))
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    for scc in sccs:
        scc_set = set(scc)
        start = scc[0]
        # Walk a cycle within the SCC deterministically.
        cycle = [start]
        seen = {start}
        node = start
        while True:
            nxts = [w for w in graph.get(node, []) if w in scc_set]
            if not nxts:
                break
            nxt = None
            for w in nxts:
                if w == start:
                    nxt = w
                    break
            if nxt is None:
                for w in nxts:
                    if w not in seen:
                        nxt = w
                        break
            if nxt is None:
                nxt = nxts[0]
            cycle.append(nxt)
            if nxt == start:
                yield cycle
                break
            if nxt in seen:
                # Found a sub-cycle not through start; normalize to it.
                sub = cycle[cycle.index(nxt):]
                yield sub + []
                break
            seen.add(nxt)
            node = nxt


PROJECT_PASSES = [
    pass_include_layer,
    pass_include_cycle,
    pass_lock_order,
]
