"""Embedded self-test corpus for tcomp-analyze.

Every rule has at least one firing snippet and one clean snippet; the
multi-file cases exercise exactly the cross-file behaviour the regex
engine could not express (paired-header members, include cycles, the
one-level call inlining behind the lock-order pass). The corpus doubles
as the source of the golden findings JSON pinned in tests/golden/.

A case is (name, {relpath: content}, expected rule names). Expectations
are exact: a case firing an *extra* rule is as much a failure as one
that stays silent.
"""

import json
import os
import sys
import tempfile

from .engine import analyze

_SHARD = "src/shard/case.cc"
_SERVICE = "src/service/case.cc"

CASES = [
    # ---- no-throw ----------------------------------------------------
    ("no-throw/fires",
     {"src/case.cc": "void F() { throw 1; }\n"},
     ["no-throw"]),
    ("no-throw/comment-and-string-clean",
     {"src/case.cc":
      "// a comment may say throw freely\n"
      "const char* s = \"don't throw\";\n"
      "const char* r = R\"(throw inside a raw string)\";\n"},
     []),
    ("no-throw/tests-out-of-scope",
     {"tests/case.cc": "void F() { throw 1; }\n"},
     []),
    # ---- no-crt-rand -------------------------------------------------
    ("no-crt-rand/rand-fires",
     {"src/case.cc": "int R() { return rand() % 6; }\n"},
     ["no-crt-rand"]),
    ("no-crt-rand/mt19937-fires-in-tests",
     {"tests/case.cc": "#include <random>\nstd::mt19937 gen(42);\n"},
     ["no-crt-rand"]),
    ("no-crt-rand/pcg-clean",
     {"src/case.cc":
      "int R(tcomp::Pcg32& rng) { return rng.NextInt(6); }\n"},
     []),
    # ---- unordered-iter ----------------------------------------------
    ("unordered-iter/fires",
     {"src/case.cc":
      "std::unordered_map<int, int> m;\n"
      "void F() { for (const auto& [k, v] : m) {} }\n"},
     ["unordered-iter"]),
    ("unordered-iter/paired-header-member-fires",
     {"src/case.h":
      "struct S {\n  std::unordered_map<int, int> window_;\n};\n",
      "src/case.cc":
      "#include \"case.h\"\n"
      "void S_Run(S& s) { for (const auto& [k, v] : s.window_) {} }\n"},
     ["unordered-iter"]),
    ("unordered-iter/allow-clean",
     {"src/case.cc":
      "std::unordered_map<int, int> m;\n"
      "// tcomp-lint: allow(unordered-iter): feeds an order-free sum\n"
      "void F() { for (const auto& [k, v] : m) {} }\n"},
     []),
    ("unordered-iter/subscript-element-clean",
     {"src/case.cc":
      "std::unordered_map<int, std::vector<int>> m;\n"
      "void F() { for (int v : m[3]) {} }\n"},
     []),
    ("unordered-iter/vector-clean",
     {"src/case.cc":
      "std::vector<int> v;\nvoid F() { for (int x : v) {} }\n"},
     []),
    # ---- shard-unordered ---------------------------------------------
    ("shard-unordered/decl-fires",
     {_SHARD: "std::unordered_map<uint32_t, int> owner_;\n"},
     ["shard-unordered"]),
    ("shard-unordered/local-fires",
     {_SHARD:
      "void F() { std::unordered_set<uint32_t> seen; seen.insert(3); }\n"},
     ["shard-unordered"]),
    ("shard-unordered/allow-clean",
     {_SHARD:
      "// tcomp-lint: allow(shard-unordered): drained via sorted copy\n"
      "std::unordered_map<uint32_t, int> owner_;\n"},
     []),
    ("shard-unordered/ordered-clean",
     {_SHARD:
      "std::vector<uint32_t> owner_;\nstd::map<uint32_t, int> rank_;\n"},
     []),
    ("shard-unordered/outside-shard-decl-clean",
     {"src/case.cc":
      "std::unordered_map<int, int> m;\nvoid F() { m[1] = 2; }\n"},
     []),
    # ---- no-naked-new ------------------------------------------------
    ("no-naked-new/new-fires",
     {"src/case.cc": "int* p = new int(3);\n"},
     ["no-naked-new"]),
    ("no-naked-new/delete-fires",
     {"src/case.cc": "void F(int* p) { delete p; }\n"},
     ["no-naked-new"]),
    ("no-naked-new/deleted-fn-clean",
     {"src/case.cc": "struct S { S(const S&) = delete; };\n"},
     []),
    # ---- sqrt-eps ----------------------------------------------------
    ("sqrt-eps/same-stmt-fires",
     {"src/case.cc": "void F() { if (std::sqrt(d2) <= eps) {} }\n"},
     ["sqrt-eps"]),
    ("sqrt-eps/distance-fires",
     {"src/case.cc":
      "void F() { if (Distance(a, b) > params.epsilon) return; }\n"},
     ["sqrt-eps"]),
    ("sqrt-eps/assign-then-compare-fires",
     {"src/case.cc":
      "void F() {\n"
      "  double d = Distance(a.center(), b.center());\n"
      "  if (d - a.radius - b.radius > eps) return;\n"
      "}\n"},
     ["sqrt-eps"]),
    ("sqrt-eps/allow-clean",
     {"src/case.cc":
      "void F() {\n"
      "  double d = Distance(a.center(), b.center());\n"
      "  // tcomp-lint: allow(sqrt-eps): lemma bound needs the true root\n"
      "  if (d - a.radius - b.radius > eps) return;\n"
      "}\n"},
     []),
    ("sqrt-eps/squared-predicate-clean",
     {"src/case.cc":
      "bool In(Point a, Point b, double eps2) {\n"
      "  return SquaredDistance(a, b) <= eps2;\n"
      "}\n"},
     []),
    ("sqrt-eps/root-without-eps-clean",
     {"src/case.cc":
      "void F() { double r = radius * std::sqrt(u); place(r); }\n"},
     []),
    # ---- include-layer -----------------------------------------------
    ("include-layer/upward-fires",
     {"src/core/bad.cc": "#include \"obs/metrics.h\"\nint x = 1;\n"},
     ["include-layer"]),
    ("include-layer/service-above-shard-clean",
     {_SERVICE: "#include \"shard/sharded_engine.h\"\nint x = 1;\n"},
     []),
    ("include-layer/downward-clean",
     {"src/obs/ok.cc": "#include \"core/types.h\"\nint x = 1;\n"},
     []),
    # ---- include-cycle -----------------------------------------------
    ("include-cycle/fires",
     {"src/core/a.h": "#include \"core/b.h\"\n",
      "src/core/b.h": "#include \"core/a.h\"\n"},
     ["include-cycle"]),
    ("include-cycle/chain-clean",
     {"src/core/a.h": "#include \"core/b.h\"\n",
      "src/core/b.h": "#include \"core/c.h\"\n",
      "src/core/c.h": "int c;\n"},
     []),
    # ---- lock-order --------------------------------------------------
    # The PR 5 `Stats()` inversion class, seeded: Stop() takes stop_mu_
    # then state_mu_; Stats() holds state_mu_ while calling a helper
    # that takes stop_mu_. Only the one-level call inlining sees it.
    ("lock-order/stats-inversion-fires",
     {"src/case.cc":
      "#include <mutex>\n"
      "class Pipeline {\n"
      " public:\n"
      "  void Stop() {\n"
      "    std::lock_guard<std::mutex> stop_lock(stop_mu_);\n"
      "    std::lock_guard<std::mutex> lock(state_mu_);\n"
      "    stopped_ = true;\n"
      "  }\n"
      "  int Stats() {\n"
      "    std::lock_guard<std::mutex> lock(state_mu_);\n"
      "    return Collect();\n"
      "  }\n"
      " private:\n"
      "  int Collect() {\n"
      "    std::lock_guard<std::mutex> lock(stop_mu_);\n"
      "    return 1;\n"
      "  }\n"
      "  bool stopped_ = false;\n"
      "  std::mutex stop_mu_;\n"
      "  std::mutex state_mu_;\n"
      "};\n"},
     ["lock-order"]),
    ("lock-order/direct-inversion-fires",
     {"src/case.cc":
      "#include <mutex>\n"
      "struct S {\n"
      "  void A() {\n"
      "    std::lock_guard<std::mutex> l1(mu_a_);\n"
      "    std::lock_guard<std::mutex> l2(mu_b_);\n"
      "  }\n"
      "  void B() {\n"
      "    std::lock_guard<std::mutex> l1(mu_b_);\n"
      "    std::lock_guard<std::mutex> l2(mu_a_);\n"
      "  }\n"
      "  std::mutex mu_a_;\n"
      "  std::mutex mu_b_;\n"
      "};\n"},
     ["lock-order"]),
    ("lock-order/consistent-order-clean",
     {"src/case.cc":
      "#include <mutex>\n"
      "struct S {\n"
      "  void A() {\n"
      "    std::lock_guard<std::mutex> l1(mu_a_);\n"
      "    std::lock_guard<std::mutex> l2(mu_b_);\n"
      "  }\n"
      "  void B() {\n"
      "    std::lock_guard<std::mutex> l1(mu_a_);\n"
      "    std::lock_guard<std::mutex> l2(mu_b_);\n"
      "  }\n"
      "  std::mutex mu_a_;\n"
      "  std::mutex mu_b_;\n"
      "};\n"},
     []),
    ("lock-order/scoped-release-clean",
     {"src/case.cc":
      "#include <mutex>\n"
      "struct S {\n"
      "  void A() {\n"
      "    { std::lock_guard<std::mutex> l1(mu_a_); }\n"
      "    std::lock_guard<std::mutex> l2(mu_b_);\n"
      "  }\n"
      "  void B() {\n"
      "    { std::lock_guard<std::mutex> l1(mu_b_); }\n"
      "    std::lock_guard<std::mutex> l2(mu_a_);\n"
      "  }\n"
      "  std::mutex mu_a_;\n"
      "  std::mutex mu_b_;\n"
      "};\n"},
     []),
    # ---- atomic-order ------------------------------------------------
    ("atomic-order/defaulted-store-fires",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<bool> stop_{false};\n"
      "void F() { stop_.store(true); }\n"},
     ["atomic-order"]),
    ("atomic-order/operator-form-fires",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<int> v{0};\n"
      "void F() { v++; }\n"},
     ["atomic-order"]),
    ("atomic-order/relaxed-clean",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<bool> stop_{false};\n"
      "void F() { stop_.store(true, std::memory_order_relaxed); }\n"
      "bool G() { return stop_.load(std::memory_order_relaxed); }\n"},
     []),
    ("atomic-order/non-atomic-load-clean",
     {"src/case.cc":
      "void F(Checkpoint& c) { c.load(\"path\"); }\n"},
     []),
    # ---- atomic-strong-order -----------------------------------------
    ("atomic-strong-order/unannotated-fires",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<bool> ready_{false};\n"
      "void F() { ready_.store(true, std::memory_order_release); }\n"},
     ["atomic-strong-order"]),
    ("atomic-strong-order/annotated-clean",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<bool> ready_{false};\n"
      "void F() {\n"
      "  // tcomp-lint: allow(atomic-strong-order): pairs with Poll()\n"
      "  ready_.store(true, std::memory_order_release);\n"
      "}\n"},
     []),
    # The justification may run over several comment lines: the
    # annotation applies through the contiguous comment block above the
    # finding, not just the single preceding line.
    ("atomic-strong-order/multiline-annotation-clean",
     {"src/case.cc":
      "#include <atomic>\n"
      "std::atomic<bool> ready_{false};\n"
      "void F() {\n"
      "  // tcomp-lint: allow(atomic-strong-order): release pairs with\n"
      "  // the acquire in Poll(); the consumer must observe the buffer\n"
      "  // writes that precede this publish.\n"
      "  ready_.store(true, std::memory_order_release);\n"
      "}\n"},
     []),
    # ---- wallclock ---------------------------------------------------
    ("wallclock/core-fires",
     {"src/core/case.cc":
      "#include <chrono>\n"
      "double Now() {\n"
      "  return std::chrono::steady_clock::now()"
      ".time_since_epoch().count();\n"
      "}\n"},
     ["wallclock"]),
    ("wallclock/service-exempt-clean",
     {_SERVICE:
      "#include <chrono>\n"
      "double Now() {\n"
      "  return std::chrono::steady_clock::now()"
      ".time_since_epoch().count();\n"
      "}\n"},
     []),
    # ---- addr-order --------------------------------------------------
    ("addr-order/pointer-comparator-fires",
     {"src/case.cc":
      "void F(std::vector<const Obj*>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Obj* a, const Obj* b) { return a < b; });\n"
      "}\n"},
     ["addr-order"]),
    ("addr-order/std-less-pointer-fires",
     {"src/case.cc":
      "std::set<Node*, std::less<Node*>> live_;\n"},
     ["addr-order"]),
    ("addr-order/field-key-clean",
     {"src/case.cc":
      "void F(std::vector<const Obj*>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Obj* a, const Obj* b)"
      " { return a->id < b->id; });\n"
      "}\n"},
     []),
    # ---- soa-raw-loop ------------------------------------------------
    ("soa-raw-loop/for-loop-fires",
     {"src/core/case.cc":
      "void F(const Snapshot& s, double eps2) {\n"
      "  for (uint32_t j = 0; j < s.size(); ++j) {\n"
      "    if (WithinEps(s.pos(0), s.pos(j), eps2)) count(j);\n"
      "  }\n"
      "}\n"},
     ["soa-raw-loop"]),
    ("soa-raw-loop/braceless-while-fires",
     {"src/shard/case.cc":
      "void F(Point a, Point b, double e2) {\n"
      "  while (step())\n"
      "    total += SquaredDistance(a, b) <= e2 ? 1 : 0;\n"
      "}\n"},
     ["soa-raw-loop"]),
    ("soa-raw-loop/outside-loop-clean",
     {"src/core/case.cc":
      "bool F(Point a, Point b, double eps2) {\n"
      "  return WithinEps(a, b, eps2);\n"
      "}\n"},
     []),
    ("soa-raw-loop/outside-scope-dirs-clean",
     {"src/stream/case.cc":
      "void F(const Snapshot& s, double eps2) {\n"
      "  for (uint32_t j = 0; j < s.size(); ++j) {\n"
      "    if (WithinEps(s.pos(0), s.pos(j), eps2)) count(j);\n"
      "  }\n"
      "}\n"},
     []),
    ("soa-raw-loop/allow-clean",
     {"src/core/case.cc":
      "void F(const Snapshot& s, double eps2) {\n"
      "  for (uint32_t j = 0; j < s.size(); ++j) {\n"
      "    // tcomp-lint: allow(soa-raw-loop): reference scalar baseline\n"
      "    if (WithinEps(s.pos(0), s.pos(j), eps2)) count(j);\n"
      "  }\n"
      "}\n"},
     []),
    # ---- nonblocking-io ----------------------------------------------
    ("nonblocking-io/bare-call-fires",
     {_SERVICE:
      "void F(int fd) { char b[8]; read(fd, b, sizeof(b)); }\n"},
     ["nonblocking-io"]),
    ("nonblocking-io/loop-without-errno-fires",
     {_SERVICE:
      "void F(int fd, const char* p, size_t n) {\n"
      "  size_t off = 0;\n"
      "  while (off < n) off += write(fd, p + off, n - off);\n"
      "}\n"},
     ["nonblocking-io"]),
    ("nonblocking-io/retry-loop-clean",
     {_SERVICE:
      "void F(int fd) {\n"
      "  char b[8];\n"
      "  for (;;) {\n"
      "    ssize_t rc = read(fd, b, sizeof(b));\n"
      "    if (rc < 0 && errno == EINTR) continue;\n"
      "    break;\n"
      "  }\n"
      "}\n"},
     []),
    ("nonblocking-io/allow-clean",
     {_SERVICE:
      "void Kick(int fd) {\n"
      "  uint64_t one = 1;\n"
      "  // tcomp-lint: allow(nonblocking-io): eventfd add never blocks\n"
      "  write(fd, &one, sizeof(one));\n"
      "}\n"},
     []),
    ("nonblocking-io/method-call-clean",
     {_SERVICE:
      "void F(Stream& s, char* b) { s.read(b, 8); s.stream()->write(b); }\n"},
     []),
    ("nonblocking-io/outside-service-clean",
     {"src/stream/case.cc":
      "void F(int fd) { char b[8]; read(fd, b, sizeof(b)); }\n"},
     []),
    # ---- annotation audit --------------------------------------------
    ("allow-without-reason/fires",
     {"src/case.cc":
      "std::unordered_map<int, int> m;\n"
      "// tcomp-lint: allow(unordered-iter)\n"
      "void F() { for (const auto& [k, v] : m) {} }\n"},
     ["allow-without-reason"]),
    ("stale-allow/fires",
     {"src/case.cc":
      "// tcomp-lint: allow(no-throw): legacy regex false positive\n"
      "int x = 1;\n"},
     ["stale-allow"]),
    ("stale-allow/used-annotation-clean",
     {"src/case.cc":
      "void F() {\n"
      "  // tcomp-lint: allow(no-throw): exercising the contract\n"
      "  throw 1;\n"
      "}\n"},
     []),
]


def run_corpus():
    """Runs every case; returns (failures, results) where results is the
    deterministic JSON structure the golden file pins."""
    failures = []
    results = []
    for name, files, expect in CASES:
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel.replace("/", os.sep))
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
            result = analyze(tmp)
        fired = sorted({f.rule for f in result.findings})
        ok = fired == sorted(expect)
        if not ok:
            failures.append(
                "case %s: expected %s, got %s"
                % (name, sorted(expect) or "clean", fired or "clean"))
        results.append({
            "name": name,
            "expect": sorted(expect),
            "findings": [f.as_json() for f in result.findings],
        })
    return failures, {"tool": "tcomp-analyze", "corpus_version": 1,
                      "cases": results}


def self_test(golden_path=None, out=sys.stdout, err=sys.stderr):
    failures, results = run_corpus()
    for failure in failures:
        err.write("self-test FAILED: %s\n" % failure)
    if golden_path:
        got = json.dumps(results, indent=2, sort_keys=True) + "\n"
        try:
            with open(golden_path, encoding="utf-8") as f:
                want = f.read()
        except OSError as e:
            failures.append("golden: %s" % e)
            err.write("self-test FAILED: cannot read golden %s: %s\n"
                      % (golden_path, e))
            want = None
        if want is not None and got != want:
            failures.append("golden mismatch")
            err.write(
                "self-test FAILED: corpus findings diverge from %s\n"
                "(regenerate with: tools/analyze --self-test "
                "--write-golden %s)\n" % (golden_path, golden_path))
    if failures:
        err.write("tcomp-analyze --self-test: %d failure(s)\n"
                  % len(failures))
        return 1
    out.write("tcomp-analyze --self-test: OK (%d cases%s)\n"
              % (len(CASES), ", golden matched" if golden_path else ""))
    return 0


def write_golden(path):
    failures, results = run_corpus()
    if failures:
        for failure in failures:
            sys.stderr.write("self-test FAILED: %s\n" % failure)
        return 1
    with open(path, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    sys.stdout.write("wrote %s\n" % path)
    return 0
