"""tcomp-analyze — token/scope-aware static analysis for the tcomp repo.

A multi-pass analyzer protecting the repo's two load-bearing guarantees:
byte-identical discovery output across threads/shards/daemon-vs-batch,
and no exceptions escaping the library. Architecture (DESIGN §1.9):

    lexer  →  per-file model  →  project model  →  passes
    (tokens)  (scopes, decls,    (#include graph,   (per-file + whole-
               functions)         function index)    project rules)

Entry points: `python3 tools/analyze` (see cli.py) and the legacy
wrapper `tools/tcomp_lint.py`.
"""

__version__ = "1.0"
