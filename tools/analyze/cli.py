"""Command-line front end for tcomp-analyze.

Usage:
  tools/analyze [ROOT] [--json OUT]       analyze the repo (default: the
                                          repo containing tools/analyze)
  tools/analyze --self-test               run the embedded rule corpus
  tools/analyze --self-test --golden F    ...and diff the corpus findings
                                          against the pinned golden JSON
  tools/analyze --self-test --write-golden F   regenerate the golden
  tools/analyze --list-rules              print the rule names

Exit status: 0 clean, 1 findings or self-test failure, 2 usage error.
The --json report is written even when findings exist (exit 1), so CI
can upload it as an artifact from a failing lane.
"""

import os
import sys

from . import engine, selftest


def _usage(err):
    err.write(__doc__.strip() + "\n")
    return 2


def main(argv):
    root = None
    json_out = None
    do_self_test = False
    golden = None
    write_golden = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--self-test":
            do_self_test = True
        elif arg == "--golden":
            i += 1
            if i >= len(argv):
                return _usage(sys.stderr)
            golden = argv[i]
        elif arg == "--write-golden":
            i += 1
            if i >= len(argv):
                return _usage(sys.stderr)
            write_golden = argv[i]
        elif arg == "--json":
            i += 1
            if i >= len(argv):
                return _usage(sys.stderr)
            json_out = argv[i]
        elif arg == "--list-rules":
            for rule in engine.RULES:
                sys.stdout.write(rule + "\n")
            return 0
        elif arg.startswith("-"):
            sys.stderr.write("tcomp-analyze: unknown flag %s\n" % arg)
            return _usage(sys.stderr)
        elif root is None:
            root = arg
        else:
            return _usage(sys.stderr)
        i += 1

    if write_golden:
        return selftest.write_golden(write_golden)
    if do_self_test:
        return selftest.self_test(golden_path=golden)

    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write("tcomp-analyze: no src/ under %s\n" % root)
        return 2

    result = engine.analyze(root)
    if json_out:
        engine.write_json(result, json_out)
    engine.render_text(result, sys.stdout)
    if result.findings:
        sys.stderr.write(
            "tcomp-analyze: %d finding(s) in %d files scanned "
            "(%d suppression(s) honored)\n"
            % (len(result.findings), result.files_scanned,
               len(result.suppressed)))
        return 1
    sys.stdout.write(
        "tcomp-analyze: OK (%d files scanned, %d suppression(s) "
        "honored)\n" % (result.files_scanned, len(result.suppressed)))
    return 0
