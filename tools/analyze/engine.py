"""Driver for tcomp-analyze: runs every pass, applies the suppression
contract, and renders findings as text and machine-readable JSON.

Suppression contract (unchanged from the regex linter, but now applied
to *comment tokens*, so a string literal that happens to contain the
pattern can no longer suppress anything):

    // tcomp-lint: allow(<rule>): <reason>

on the finding's line, or anywhere in the contiguous block of
comment-only lines directly above it (so a justification may take the
prose it needs). The reason is mandatory — an
allowlist entry is a reviewed claim, not an escape hatch. Two audit
rules close the loop on the annotations themselves:

    allow-without-reason   an allow() with no ': <reason>'
    stale-allow            an allow() that suppresses nothing — the
                           hazard it cited is gone, so the annotation
                           must go too (this is how the PR 8 migration
                           retired annotations that only ever silenced
                           regex false positives)
"""

import json
import re

from .project import Project
from .rules_file import FILE_PASSES
from .rules_project import PROJECT_PASSES

RULES = [
    "no-throw", "no-crt-rand", "unordered-iter", "shard-unordered",
    "no-naked-new", "sqrt-eps", "include-layer", "include-cycle",
    "lock-order", "atomic-order", "atomic-strong-order", "wallclock",
    "addr-order", "soa-raw-loop", "nonblocking-io",
    "allow-without-reason", "stale-allow",
]

_ALLOW_RE = re.compile(r"tcomp-lint:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)")
_ALLOW_NO_REASON_RE = re.compile(r"tcomp-lint:\s*allow\(([a-z-]+)\)\s*(?!:)")


class Finding:
    __slots__ = ("rel", "line", "rule", "message")

    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.rel, self.line, self.rule, self.message)

    def as_json(self):
        return {"path": self.rel, "line": self.line, "rule": self.rule,
                "message": self.message}


class Analysis:
    """Result of one full run: findings, suppressions, and scan stats."""

    def __init__(self):
        self.findings = []
        self.suppressed = []  # dicts: path/line/rule/reason
        self.files_scanned = 0


def _collect_allows(fm):
    """allow() annotations in `fm`: {(line, rule): [reason|None]}."""
    allows = {}
    for line, comments in fm.comments_by_line.items():
        for text in comments:
            for m in _ALLOW_RE.finditer(text):
                allows[(line, m.group(1))] = m.group(2).strip()
            if not _ALLOW_RE.search(text):
                m = _ALLOW_NO_REASON_RE.search(text)
                if m:
                    allows[(line, m.group(1))] = None
    return allows


def analyze(root):
    project = Project(root)
    result = Analysis()
    result.files_scanned = len(project.files)

    allows = {}        # rel -> {(line, rule): reason or None}
    used_allows = set()  # (rel, line, rule)
    for rel, fm in project.files.items():
        allows[rel] = _collect_allows(fm)

    raw = []

    def report(rel, line, rule, message):
        raw.append(Finding(rel, line, rule, message))

    for rel in sorted(project.files):
        fm = project.files[rel]

        def file_report(rule, line, message, rel=rel):
            report(rel, line, rule, message)

        for pass_fn in FILE_PASSES:
            pass_fn(project, rel, fm, file_report)
    for pass_fn in PROJECT_PASSES:
        pass_fn(project, report)

    # Comment-only lines per file: a comment token and nothing else. The
    # suppression window for a finding is its own line plus the contiguous
    # run of comment-only lines directly above it.
    comment_only = {}
    for rel, fm in project.files.items():
        has_comment, has_code = set(), set()
        for t in fm.tokens:
            (has_comment if t.kind == "comment" else has_code).add(t.line)
        comment_only[rel] = has_comment - has_code

    def suppression_window(f):
        yield f.line
        ln = f.line - 1
        while ln >= 1 and ln in comment_only.get(f.rel, ()):
            yield ln
            ln -= 1

    for f in raw:
        file_allows = allows.get(f.rel, {})
        suppressed = False
        for ln in suppression_window(f):
            entry = file_allows.get((ln, f.rule))
            if (ln, f.rule) in file_allows:
                used_allows.add((f.rel, ln, f.rule))
                suppressed = True
                if entry is None:
                    result.findings.append(Finding(
                        f.rel, ln, "allow-without-reason",
                        "allow(%s) annotation needs a ': <reason>'"
                        % f.rule))
                else:
                    result.suppressed.append(
                        {"path": f.rel, "line": ln, "rule": f.rule,
                         "reason": entry})
                break
        if not suppressed:
            result.findings.append(f)

    # Stale annotations: an allow() that suppressed nothing is itself a
    # finding — dead suppressions rot into unreviewed blanket waivers.
    for rel in sorted(allows):
        for (line, rule), reason in sorted(allows[rel].items()):
            if rule not in RULES:
                report_unknown = Finding(
                    rel, line, "stale-allow",
                    "allow(%s) names no known rule (rules: %s)"
                    % (rule, ", ".join(RULES)))
                result.findings.append(report_unknown)
            elif (rel, line, rule) not in used_allows:
                result.findings.append(Finding(
                    rel, line, "stale-allow",
                    "allow(%s) suppresses nothing in the code below it; "
                    "the hazard is gone — remove the annotation" % rule))

    # Deterministic order, duplicate-free (two passes may flag one line).
    uniq = {}
    for f in result.findings:
        uniq[f.key()] = f
    result.findings = [uniq[k] for k in sorted(uniq)]
    result.suppressed.sort(
        key=lambda s: (s["path"], s["line"], s["rule"]))
    return result


def render_text(result, out):
    for f in result.findings:
        out.write("%s:%d: [%s] %s\n" % (f.rel, f.line, f.rule, f.message))


def as_json(result):
    return {
        "tool": "tcomp-analyze",
        "version": 1,
        "files_scanned": result.files_scanned,
        "rules": RULES,
        "findings": [f.as_json() for f in result.findings],
        "suppressed": result.suppressed,
    }


def write_json(result, path):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(as_json(result), f, indent=2, sort_keys=True)
        f.write("\n")
