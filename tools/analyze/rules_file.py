"""Per-file passes for tcomp-analyze.

The six rules migrated off the regex engine (no-throw, no-crt-rand,
unordered-iter, shard-unordered, no-naked-new, sqrt-eps) plus the
token-level halves of the new concurrency/nondeterminism audits
(atomic-order, atomic-strong-order, wallclock, addr-order).

Every pass receives the project (for paired-header name sets), the file
model, and a `report(rule, line, message)` callback; the engine applies
the `// tcomp-lint: allow(<rule>): <reason>` suppression contract.
"""

_LIB_TOPS = ("src", "tools")

_CRT_RAND_CALLS = frozenset(["rand", "srand", "drand48", "lrand48"])
_CRT_RAND_TYPES = frozenset(
    ["random_device", "mt19937", "mt19937_64", "default_random_engine",
     "minstd_rand", "minstd_rand0"])
_UNORDERED_TYPES = frozenset(
    ["unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset"])
# Accessors known (by project convention) to expose an unordered
# container; a linter's name model cannot see through return types.
_UNORDERED_ACCESSORS = frozenset(["entries"])

_CMP_OPS = frozenset(["<", ">", "<=", ">="])

_ATOMIC_EXPLICIT_OPS = frozenset(
    ["load", "store", "exchange", "test_and_set",
     "compare_exchange_weak", "compare_exchange_strong"])
_ATOMIC_RMW_OPS = frozenset(
    ["fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor"])
_RELAXED = "memory_order_relaxed"

_CLOCK_IDENTS = frozenset(
    ["system_clock", "steady_clock", "high_resolution_clock",
     "gettimeofday", "clock_gettime", "localtime", "gmtime"])
# Files/directories sanctioned to read wall clocks: the timer utility and
# the monitoring/service layers, whose latencies are *about* real time.
_CLOCK_EXEMPT_PREFIXES = ("src/util/timer.h", "src/obs/", "src/service/")


def _top(rel):
    return rel.split("/", 1)[0]


def _in_lib(rel):
    return _top(rel) in _LIB_TOPS


# ---- no-throw ----------------------------------------------------------


def pass_no_throw(project, rel, fm, report):
    if _top(rel) != "src":
        return
    for tok in fm.code:
        if tok.kind == "ident" and tok.text == "throw":
            report("no-throw", tok.line,
                   "library code must return Status, not throw")


# ---- no-crt-rand -------------------------------------------------------


def pass_no_crt_rand(project, rel, fm, report):
    code = fm.code
    for i, tok in enumerate(code):
        if tok.kind != "ident":
            continue
        if tok.text in _CRT_RAND_CALLS:
            nxt = code[i + 1] if i + 1 < len(code) else None
            if nxt and nxt.text == "(":
                report("no-crt-rand", tok.line,
                       "'%s' is nondeterministic or platform-varying; use "
                       "tcomp::Pcg32 (util/random.h)" % tok.text)
        elif tok.text in _CRT_RAND_TYPES:
            report("no-crt-rand", tok.line,
                   "'%s' is nondeterministic or platform-varying; use "
                   "tcomp::Pcg32 (util/random.h)" % tok.text)


# ---- shard-unordered ---------------------------------------------------


def pass_shard_unordered(project, rel, fm, report):
    if not rel.startswith("src/shard/"):
        return
    for tok in fm.code:
        if tok.kind == "ident" and tok.text in _UNORDERED_TYPES:
            report("shard-unordered", tok.line,
                   "hash-ordered container on the shard path; the merge "
                   "contract is byte-identical output at any shard count "
                   "— use a sorted vector or std::map, or annotate why "
                   "hash order cannot reach the merge")


# ---- unordered-iter ----------------------------------------------------


def pass_unordered_iter(project, rel, fm, report):
    if not _in_lib(rel):
        return
    unordered = project.known_names(rel, "unordered")
    for line, expr in fm.range_fors:
        hit = _range_expr_unordered(expr, unordered)
        if hit:
            report("unordered-iter", line,
                   "range-for over %s iterates in hash order; sort first "
                   "or annotate why order cannot reach an output/ordering "
                   "path" % hit)


def _range_expr_unordered(expr, unordered_vars):
    texts = [t.text for t in expr]
    if "[" in texts:
        return None  # map[key] iterates the mapped value, not the map
    if "(" in texts:
        # Calls are matched only against the known unordered accessors,
        # spelled `obj.entries()` / `obj->entries()` at the tail.
        for i, t in enumerate(expr):
            if (t.kind == "ident" and t.text in _UNORDERED_ACCESSORS
                    and i >= 1 and expr[i - 1].text in (".", "->")
                    and i + 2 < len(expr) and expr[i + 1].text == "("
                    and expr[i + 2].text == ")"
                    and i + 3 == len(expr)):
                return "'%s()' (unordered by convention)" % t.text
        return None
    for t in expr:
        if t.kind == "ident" and t.text in _UNORDERED_TYPES:
            return "an unordered container"
    hits = sorted(t.text for t in expr
                  if t.kind == "ident" and t.text in unordered_vars)
    if hits:
        return "'%s'" % hits[0]
    return None


# ---- no-naked-new ------------------------------------------------------


def pass_no_naked_new(project, rel, fm, report):
    if not _in_lib(rel):
        return
    code = fm.code
    for i, tok in enumerate(code):
        if tok.kind != "ident":
            continue
        if tok.text == "new":
            report("no-naked-new", tok.line,
                   "naked 'new'; use std::make_unique or a container")
        elif tok.text == "delete":
            prev = code[i - 1] if i > 0 else None
            if prev and prev.text == "=":
                continue  # `= delete` declaration
            nxt = code[i + 1] if i + 1 < len(code) else None
            if nxt and nxt.text == "[":
                report("no-naked-new", tok.line,
                       "naked 'delete[]'; use std::vector or "
                       "std::unique_ptr[]")
            else:
                report("no-naked-new", tok.line,
                       "naked 'delete'; owning pointers must be smart "
                       "pointers")


# ---- sqrt-eps ----------------------------------------------------------

_SQRT_EPS_MSG = (
    "root distance compared against an ε threshold; decide membership "
    "through the shared WithinEps (core/dbscan.h) on squared distances, "
    "or annotate why the exact root is required")


def _is_eps_ident(text):
    return text.startswith("eps") or text.startswith("Eps") or (
        "epsilon" in text.lower())


def _statements(code):
    """Splits the code token stream into statement-sized runs at `;`,
    `{`, `}` — the granularity the sqrt-eps heuristics reason over."""
    stmt = []
    for tok in code:
        if tok.kind == "punct" and tok.text in (";", "{", "}"):
            if stmt:
                yield stmt
                stmt = []
        else:
            stmt.append(tok)
    if stmt:
        yield stmt


def _root_call_idx(stmt):
    """Index of a root-taking call (`sqrt(` / `Distance(`) in the
    statement, or -1. SquaredDistance/SegmentDistance stay out: they are
    different metrics with their own thresholds."""
    for i, tok in enumerate(stmt):
        if (tok.kind == "ident" and tok.text in ("sqrt", "Distance")
                and i + 1 < len(stmt) and stmt[i + 1].text == "("):
            return i
    return -1


def pass_sqrt_eps(project, rel, fm, report):
    if not _in_lib(rel):
        return
    stmts = list(_statements(fm.code))
    pending = []  # (var_name, statements_left) from assign-then-compare
    for stmt in stmts:
        texts = [t.text for t in stmt]
        has_cmp = any(t.kind == "punct" and t.text in _CMP_OPS
                      for t in stmt)
        has_eps = any(t.kind == "ident" and _is_eps_ident(t.text)
                      for t in stmt)
        root = _root_call_idx(stmt)
        if root >= 0 and has_cmp and has_eps:
            report("sqrt-eps", stmt[root].line, _SQRT_EPS_MSG)
        # Track `double d = Distance(...);`-style assignments so a compare
        # against ε a few statements later is still caught.
        if root >= 0:
            for i, tok in enumerate(stmt):
                if (tok.kind == "ident"
                        and tok.text in ("double", "float", "auto")
                        and i + 1 < len(stmt)
                        and stmt[i + 1].kind == "ident"
                        and i + 2 < len(stmt)
                        and stmt[i + 2].text == "="):
                    pending.append([stmt[i + 1].text, 8])
                    break
        else:
            for entry in pending:
                name = entry[0]
                if (name in texts and has_cmp and has_eps):
                    idx = texts.index(name)
                    report("sqrt-eps", stmt[idx].line, _SQRT_EPS_MSG)
                    entry[1] = 0
        pending = [[n, left - 1] for n, left in pending if left > 1]


# ---- atomic-order / atomic-strong-order --------------------------------


def _receiver_is_atomic(code, i, atomics):
    """`code[i]` is the `.` / `->` before an op name: walk the receiver
    chain back over `]`/`)` groups to its tail identifier."""
    j = i - 1
    depth = 0
    while j >= 0:
        t = code[j]
        if t.kind == "punct" and t.text in ("]", ")"):
            depth += 1
        elif t.kind == "punct" and t.text in ("[", "("):
            depth -= 1
        elif depth == 0:
            break
        j -= 1
    return j >= 0 and code[j].kind == "ident" and code[j].text in atomics


def _call_arg_tokens(code, i):
    """`code[i]` is the `(` opening a call: returns the argument tokens."""
    depth = 0
    args = []
    while i < len(code):
        t = code[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
                if depth == 1:
                    i += 1
                    continue
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return args
        args.append(t)
        i += 1
    return args


def pass_atomic_order(project, rel, fm, report):
    if not _in_lib(rel):
        return
    atomics = project.known_names(rel, "atomic")
    code = fm.code
    strong_scope = _top(rel) == "src"
    for i, tok in enumerate(code):
        if tok.kind != "ident":
            continue
        is_rmw = tok.text in _ATOMIC_RMW_OPS
        is_explicit = tok.text in _ATOMIC_EXPLICIT_OPS
        if is_rmw or is_explicit:
            if (i == 0 or code[i - 1].text not in (".", "->")
                    or i + 1 >= len(code) or code[i + 1].text != "("):
                continue
            # fetch_*/compare_exchange are unambiguous atomic ops;
            # load/store/exchange must resolve to a declared atomic so
            # `framer.load(path)`-style methods stay out.
            if is_explicit and tok.text in ("load", "store", "exchange"):
                if not _receiver_is_atomic(code, i - 1, atomics):
                    continue
            args = _call_arg_tokens(code, i + 1)
            orders = [t.text for t in args if t.kind == "ident"
                      and t.text.startswith("memory_order")]
            if not orders:
                report("atomic-order", tok.line,
                       "atomic %s() with defaulted (seq_cst) memory "
                       "order; every atomic op must name its order "
                       "explicitly — std::memory_order_relaxed unless "
                       "this is an annotated synchronization point"
                       % tok.text)
            elif strong_scope and any(o != _RELAXED for o in orders):
                report("atomic-strong-order", tok.line,
                       "memory order stronger than relaxed is a "
                       "synchronization point; annotate what it pairs "
                       "with (allow(atomic-strong-order): <pairing>)")
            continue
        # Operator forms on declared atomics (`v++`, `++v`, `v += n`,
        # `v = x`) are sequentially consistent and cannot name an order.
        if tok.text in atomics:
            prev = code[i - 1] if i > 0 else None
            nxt = code[i + 1] if i + 1 < len(code) else None
            if prev and prev.kind == "punct" and prev.text in ("++", "--"):
                report("atomic-order", tok.line,
                       "'%s%s' on an atomic is seq_cst; use "
                       "fetch_add/fetch_sub with an explicit order"
                       % (prev.text, tok.text))
            elif nxt and nxt.kind == "punct" and nxt.text in (
                    "++", "--", "+=", "-=", "|=", "&=", "^="):
                report("atomic-order", tok.line,
                       "'%s%s' on an atomic is seq_cst; use "
                       "fetch_add/fetch_sub with an explicit order"
                       % (tok.text, nxt.text))
            elif (nxt and nxt.kind == "punct" and nxt.text == "="
                  and prev is not None and prev.kind != "ident"
                  and prev.text not in (">", ">>", ",", "(", "<", "::")):
                # Assignment to an atomic outside its declaration is a
                # seq_cst store. Any identifier before the name (`auto d =`,
                # `int64_t d =`, `...> v =`) marks a declaration — of the
                # atomic itself or of a plain local that shares its name.
                report("atomic-order", tok.line,
                       "'%s = ...' on an atomic is a seq_cst store; use "
                       ".store() with an explicit order" % tok.text)


# ---- wallclock ---------------------------------------------------------


def pass_wallclock(project, rel, fm, report):
    if _top(rel) != "src":
        return
    if any(rel.startswith(p) for p in _CLOCK_EXEMPT_PREFIXES):
        return
    for tok in fm.code:
        if tok.kind == "ident" and tok.text in _CLOCK_IDENTS:
            report("wallclock", tok.line,
                   "wall-clock read ('%s') outside util/timer.h, obs/, "
                   "service/: discovery results must be a pure function "
                   "of the input stream — route timing through "
                   "tcomp::Timer or move it to the service/obs layer"
                   % tok.text)


# ---- soa-raw-loop ------------------------------------------------------

_SOA_DIST_CALLS = frozenset(["WithinEps", "SquaredDistance"])
_SOA_SCOPE_PREFIXES = ("src/core/", "src/shard/")
_SOA_RAW_LOOP_MSG = (
    "scalar per-point ε-distance evaluation inside a loop on a snapshot "
    "hot path; stream the candidate batch through EpsFilterBatch / "
    "EpsFilterGather (util/eps_filter.h) so the compare vectorizes, or "
    "annotate why this site must stay scalar")


def _skip_paren_group(code, i):
    """`code[i]` is `(`: returns the index just past the matching `)`."""
    n = len(code)
    depth = 0
    while i < n:
        t = code[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return i


def _loop_extent(code, i):
    """`code[i]` is a `for`/`while`/`do` keyword: returns the index just
    past the construct. Brace bodies run to the matching `}`; braceless
    bodies to the next top-level `;` (nested constructs inside are
    re-visited by their own keyword anyway)."""
    n = len(code)
    j = i + 1
    if code[i].text in ("for", "while") and j < n and code[j].text == "(":
        j = _skip_paren_group(code, j)
    if j < n and code[j].text == "{":
        depth = 0
        k = j
        while k < n:
            t = code[k]
            if t.kind == "punct":
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    if depth == 0:
                        k += 1
                        break
            k += 1
        return k
    depth = 0
    k = j
    while k < n:
        t = code[k]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
            elif t.text == ";" and depth == 0:
                k += 1
                break
        k += 1
    return k


def _mark_loop_region(code, i, in_loop):
    """`code[i]` is a `for`/`while`/`do` keyword. Marks the construct's
    header and body tokens in `in_loop`."""
    for idx in range(i, _loop_extent(code, i)):
        in_loop[idx] = True


def pass_soa_raw_loop(project, rel, fm, report):
    """New scalar distance loops in the SoA-kernel scope (src/core/ and
    src/shard/) bypass the batched ε-filter hot path; every sanctioned
    scalar site (reference backends, fallback branches, anchor probes)
    carries an allow() with its rationale."""
    if not rel.startswith(_SOA_SCOPE_PREFIXES):
        return
    code = fm.code
    n = len(code)
    in_loop = [False] * n
    for i, tok in enumerate(code):
        if tok.kind == "ident" and tok.text in ("for", "while", "do"):
            _mark_loop_region(code, i, in_loop)
    for i, tok in enumerate(code):
        if (tok.kind == "ident" and tok.text in _SOA_DIST_CALLS
                and in_loop[i]
                and i + 1 < n and code[i + 1].text == "("):
            report("soa-raw-loop", tok.line, _SOA_RAW_LOOP_MSG)


# ---- nonblocking-io ----------------------------------------------------

_RAW_IO_CALLS = frozenset(
    ["read", "write", "accept", "accept4", "recv", "send"])
_ERRNO_RETRY_IDENTS = frozenset(["EINTR", "EAGAIN", "EWOULDBLOCK"])
_NONBLOCKING_IO_MSG = (
    "raw %s() in src/service/ outside a retry loop that handles "
    "EINTR/EAGAIN: every descriptor on the event-loop path is "
    "nonblocking, so a single attempt silently drops data on a "
    "transient errno — loop until handled, or annotate why one "
    "attempt is safe")


def pass_nonblocking_io(project, rel, fm, report):
    """Raw POSIX I/O calls in the service layer must sit inside a loop
    whose body names EINTR/EAGAIN/EWOULDBLOCK (the retry idiom in
    socket.cc), or carry an allow() with the reason a single shot is
    safe. Method calls (`sock.read(...)`, `out->write(...)`) and
    namespaced functions are not syscalls and stay out."""
    if not rel.startswith("src/service/"):
        return
    code = fm.code
    n = len(code)
    regions = [(i, _loop_extent(code, i)) for i, tok in enumerate(code)
               if tok.kind == "ident" and tok.text in ("for", "while",
                                                       "do")]
    for i, tok in enumerate(code):
        if tok.kind != "ident" or tok.text not in _RAW_IO_CALLS:
            continue
        if i + 1 >= n or code[i + 1].text != "(":
            continue
        prev = code[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "punct" and prev.text in (
                ".", "->"):
            continue
        if prev is not None and prev.text == "::":
            # `ns::read(` is a namespaced function; a *leading* `::read(`
            # is the raw syscall, explicitly qualified.
            before = code[i - 2] if i >= 2 else None
            if before is not None and before.kind == "ident":
                continue
        handled = any(
            start <= i < end and any(
                t.kind == "ident" and t.text in _ERRNO_RETRY_IDENTS
                for t in code[start:end])
            for start, end in regions)
        if not handled:
            report("nonblocking-io", tok.line,
                   _NONBLOCKING_IO_MSG % tok.text)


# ---- addr-order --------------------------------------------------------


def pass_addr_order(project, rel, fm, report):
    if not _in_lib(rel):
        return
    code = fm.code
    n = len(code)
    for i, tok in enumerate(code):
        # std::less<T*> — ordering by pointer value.
        if (tok.kind == "ident" and tok.text == "less"
                and i + 1 < n and code[i + 1].text == "<"):
            j = i + 1
            depth = 0
            saw_star = False
            while j < n:
                t = code[j]
                if t.kind == "punct":
                    if t.text == "<":
                        depth += 1
                    elif t.text in (">", ">>"):
                        depth -= 1 if t.text == ">" else 2
                        if depth <= 0:
                            break
                    elif t.text == "*":
                        saw_star = True
                j += 1
            if saw_star:
                report("addr-order", tok.line,
                       "std::less over a pointer type orders by address; "
                       "addresses vary run to run, so any output derived "
                       "from this order is nondeterministic")
            continue
        # Lambda comparators whose body compares two pointer parameters
        # by value: `[](const T* a, const T* b) { return a < b; }`.
        if tok.kind == "punct" and tok.text == "[" and i + 1 < n:
            ptr_params = _lambda_pointer_params(code, i)
            if ptr_params is None:
                continue
            params, body_start, body_end = ptr_params
            if len(params) < 2:
                continue
            k = body_start
            while k + 2 < body_end:
                a, op, b = code[k], code[k + 1], code[k + 2]
                if (a.kind == "ident" and a.text in params
                        and op.kind == "punct" and op.text in _CMP_OPS
                        and b.kind == "ident" and b.text in params
                        and a.text != b.text):
                    report("addr-order", op.line,
                           "comparator orders pointers by address "
                           "('%s %s %s'); key the comparison on stable "
                           "ids or fields instead"
                           % (a.text, op.text, b.text))
                k += 1


def _lambda_pointer_params(code, i):
    """`code[i]` is `[`. If this introduces a lambda with a parameter
    list, returns ({pointer param names}, body_start, body_end) token
    indices, else None."""
    n = len(code)
    depth = 0
    j = i
    while j < n:  # skip capture list
        t = code[j]
        if t.kind == "punct":
            if t.text == "[":
                depth += 1
            elif t.text == "]":
                depth -= 1
                if depth == 0:
                    break
        j += 1
    if j + 1 >= n or code[j + 1].text != "(":
        return None
    params = set()
    k = j + 1
    depth = 0
    cur = []
    while k < n:
        t = code[k]
        if t.kind == "punct" and t.text == "(":
            depth += 1
            if depth == 1:
                k += 1
                continue
        if t.kind == "punct" and t.text == ")":
            depth -= 1
            if depth == 0:
                break
        if t.kind == "punct" and t.text == "," and depth == 1:
            _add_pointer_param(cur, params)
            cur = []
        else:
            cur.append(t)
        k += 1
    _add_pointer_param(cur, params)
    # Find the body braces (skip mutable/noexcept/-> return type).
    while k < n and code[k].text != "{":
        if code[k].text in (";", ")"):
            pass
        k += 1
    if k >= n:
        return None
    depth = 0
    body_start = k + 1
    while k < n:
        if code[k].kind == "punct":
            if code[k].text == "{":
                depth += 1
            elif code[k].text == "}":
                depth -= 1
                if depth == 0:
                    return (params, body_start, k)
        k += 1
    return None


def _add_pointer_param(tokens, params):
    if any(t.kind == "punct" and t.text == "*" for t in tokens):
        idents = [t.text for t in tokens if t.kind == "ident"]
        if idents:
            params.add(idents[-1])


FILE_PASSES = [
    pass_no_throw,
    pass_no_crt_rand,
    pass_shard_unordered,
    pass_unordered_iter,
    pass_no_naked_new,
    pass_sqrt_eps,
    pass_atomic_order,
    pass_wallclock,
    pass_addr_order,
    pass_soa_raw_loop,
    pass_nonblocking_io,
]
