#!/usr/bin/env python3
"""Run the perf-trajectory harness and record its JSON output.

Wraps the bench_perf_json binary: runs it with the chosen workload,
validates the result (checksums and counters must agree between the
kernel and merge paths, incremental clustering must reproduce the
full-DBSCAN products, and every sharded run must produce byte-identical
companions to the single-shard baseline), annotates it with the
toolchain/commit the numbers were taken on, and writes it to
BENCH_PR<N>.json at the repo root — the repo's perf-trajectory record,
one file per PR that re-measured it (--pr selects N; --out overrides
the path entirely).

--history skips the harness entirely and reads every BENCH_PR*.json
already at the repo root, printing one cross-PR trajectory table so the
speedup story is readable in one place instead of N disconnected files.

Usage:
    tools/bench_json.py --build-dir build --pr 7     # full workload
    tools/bench_json.py --build-dir build --quick    # CI smoke workload
    tools/bench_json.py --history                    # cross-PR table
"""

import argparse
import json
import os
import pathlib
import platform
import re
import subprocess
import sys


def run_harness(binary, extra_args):
    cmd = [str(binary)] + extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{' '.join(cmd)} exited with {proc.returncode}")
    return json.loads(proc.stdout)


def git_commit(repo_root):
    try:
        out = subprocess.run(
            ["git", "-C", str(repo_root), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def _best_speedup(entries, key):
    """Largest `key` across a section's entries, or None."""
    best = None
    for entry in entries:
        value = entry.get(key)
        if value is None:
            continue
        if best is None or value > best:
            best = value
    return best


def _entry_speedup(entries, key, **match):
    """`key` from the first entry matching every `match` field, or None."""
    for entry in entries:
        if all(entry.get(k) == v for k, v in match.items()):
            return entry.get(key)
    return None


def history(repo_root):
    """Print the cross-PR speedup trajectory from every BENCH_PR*.json.

    Each column is the headline number of the PR that introduced it:
    intersect/istep (PR 4 bitset kernels), incr-cluster (PR 6 carried
    state), shard-best (PR 7 sharded C-step), soa-cluster (PR 9 SoA
    ε-filter). Older records simply lack the newer sections — those
    cells print '-', which is the point of the table: you can see when
    each axis of the trajectory came online.
    """
    records = []
    for path in repo_root.glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if not m:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"  (skipping {path.name}: {err})", file=sys.stderr)
            continue
        records.append((int(m.group(1)), data))
    if not records:
        print("no BENCH_PR*.json records at the repo root")
        return 1
    records.sort()

    def fmt(value):
        return f"{value:.2f}x" if value is not None else "-"

    header = (f"{'PR':>4} {'commit':>8} {'objects':>8} {'intersect':>10} "
              f"{'istep':>7} {'incr-cluster':>13} {'shard-best':>11} "
              f"{'soa-cluster':>12}")
    print(header)
    print("-" * len(header))
    for pr, data in records:
        commit = data.get("provenance", {}).get("commit", "?")
        objects = data.get("config", {}).get("objects", "?")
        micro = data.get("micro", {})
        intersect = micro.get("intersect_speedup")
        istep = _entry_speedup(data.get("e2e", []), "istep_speedup",
                               algorithm="SC")
        incr = _entry_speedup(data.get("incremental", []), "cluster_speedup",
                              algorithm="SC")
        shard = _best_speedup(data.get("sharded", []), "speedup_vs_1")
        soa_entries = data.get("soa", {}).get("e2e", [])
        soa = _entry_speedup(soa_entries, "cluster_speedup",
                             scenario="coherent")
        print(f"{pr:>4} {commit:>8} {objects:>8} {fmt(intersect):>10} "
              f"{fmt(istep):>7} {fmt(incr):>13} {fmt(shard):>11} "
              f"{fmt(soa):>12}")
    return 0


def main():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory containing bench/")
    parser.add_argument("--pr", type=int, default=4,
                        help="PR number naming the output record "
                             "(BENCH_PR<N>.json at the repo root)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (overrides --pr naming)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI lane)")
    parser.add_argument("--reps", type=int, default=9,
                        help="end-to-end repetitions per kernel mode")
    parser.add_argument("--objects", type=int, default=None,
                        help="override the e2e stream population")
    parser.add_argument("--snapshots", type=int, default=None,
                        help="override the e2e stream length")
    parser.add_argument("--history", action="store_true",
                        help="print the cross-PR speedup trajectory from "
                             "existing BENCH_PR*.json records and exit")
    args = parser.parse_args()

    if args.history:
        return history(repo_root)

    binary = pathlib.Path(args.build_dir) / "bench" / "bench_perf_json"
    if not binary.exists():
        raise SystemExit(
            f"{binary} not found — build first: cmake --build {args.build_dir}")

    harness_args = ["--reps", str(args.reps)]
    if args.quick:
        harness_args.append("--quick")
    if args.objects is not None:
        harness_args += ["--objects", str(args.objects)]
    if args.snapshots is not None:
        harness_args += ["--snapshots", str(args.snapshots)]
    result = run_harness(binary, harness_args)

    config = result["config"]
    if config.get("warmup_iters") is None or config["warmup_iters"] < 1:
        raise SystemExit("harness ran without warm-up iterations — cold-start "
                         "numbers are not comparable; refusing to record")

    micro = result["micro"]
    if not (micro["intersect_checksums_match"]
            and micro["closedness_checksums_match"]):
        raise SystemExit("micro checksums disagree: kernels are not a "
                         "pure optimization — refusing to record")
    for entry in result["e2e"]:
        if not entry["identical_counters"]:
            raise SystemExit(f"{entry['algorithm']}: intersection counters "
                             "differ across kernel modes — refusing to record")
    for entry in result.get("incremental", []):
        if not entry["identical_products"]:
            raise SystemExit(f"{entry['algorithm']}: incremental clustering "
                             "changed the products — refusing to record")
        if not 0.0 <= entry["reuse_ratio"] <= 1.0:
            raise SystemExit(f"{entry['algorithm']}: reuse_ratio "
                             f"{entry['reuse_ratio']} out of [0, 1] — torn "
                             "counters; refusing to record")
    for entry in result.get("sharded", []):
        if not entry["identical_products"]:
            raise SystemExit(
                f"sharded {entry['scenario']} @ {entry['shards']} shards: "
                "companions differ from the single-shard baseline — the "
                "decomposition is not product-preserving; refusing to record")

    soa = result.get("soa", {})
    if soa:
        if not soa["micro"]["checksums_match"]:
            raise SystemExit("SoA eps-filter micro checksums disagree with "
                             "the scalar walk — refusing to record")
        for entry in soa.get("e2e", []):
            if not entry["identical_products"]:
                raise SystemExit(
                    f"soa {entry['scenario']} ({entry['algorithm']}): "
                    "products or distance_ops differ across SoA modes — "
                    "refusing to record")

    stage_metrics = result.get("stage_metrics", {})
    histograms = stage_metrics.get("histograms", {})
    if not histograms:
        raise SystemExit("harness emitted no stage histograms — the obs "
                         "instrumentation is wired out; refusing to record")
    for name, snap in histograms.items():
        if snap["count"] > 0 and sum(snap["buckets"]) != snap["count"]:
            raise SystemExit(f"{name}: bucket counts do not sum to count "
                             "— torn histogram snapshot in a single-threaded "
                             "run; refusing to record")

    result["provenance"] = {
        "commit": git_commit(repo_root),
        "machine": platform.machine(),
        "system": platform.system(),
        "hardware_threads": os.cpu_count(),
    }

    out_path = pathlib.Path(
        args.out if args.out is not None
        else repo_root / f"BENCH_PR{args.pr}.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    print(f"wrote {out_path}")
    print(f"  micro: intersect {micro['intersect_speedup']:.1f}x, "
          f"closedness {micro['closedness_speedup']:.1f}x")
    for entry in result["e2e"]:
        print(f"  e2e {entry['algorithm']}: "
              f"istep {entry['istep_speedup']:.2f}x, "
              f"normalized {entry['norm_speedup']:.3f}x")
    # Informational, not gated: the incremental layer's wins depend on
    # stream coherence, which CI machines cannot promise to reproduce.
    for entry in result.get("incremental", []):
        print(f"  incremental {entry['algorithm']}: "
              f"cluster {entry['cluster_speedup']:.2f}x, "
              f"total {entry['total_speedup']:.2f}x, "
              f"reuse {entry['reuse_ratio']:.2f}")
    for entry in result.get("sharded", []):
        print(f"  sharded {entry['scenario']} @ {entry['shards']}: "
              f"total {entry['speedup_vs_1']:.2f}x, "
              f"cluster {entry['cluster_speedup_vs_1']:.2f}x, "
              f"halo {entry['halo_objects']}")
    if soa:
        print(f"  soa micro: batch {soa['micro']['batch_speedup']:.2f}x, "
              f"gather {soa['micro']['gather_speedup']:.2f}x")
        for entry in soa.get("e2e", []):
            print(f"  soa {entry['scenario']} ({entry['algorithm']}): "
                  f"cluster {entry['cluster_speedup']:.2f}x, "
                  f"total {entry['total_speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
