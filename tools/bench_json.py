#!/usr/bin/env python3
"""Run the perf-trajectory harness and record its JSON output.

Wraps the bench_perf_json binary: runs it with the chosen workload,
validates the result (checksums and counters must agree between the
kernel and merge paths, incremental clustering must reproduce the
full-DBSCAN products, and every sharded run must produce byte-identical
companions to the single-shard baseline), annotates it with the
toolchain/commit the numbers were taken on, and writes it to
BENCH_PR<N>.json at the repo root — the repo's perf-trajectory record,
one file per PR that re-measured it (--pr selects N; --out overrides
the path entirely).

--blast (implied by --pr 10) runs the `tcomp blast` service load
generator instead of the perf harness: a saturation curve per wire
protocol (sustained records/sec, p50/p95/p99 ingest-admission latency,
shed fraction vs offered load), gated on the serve-vs-batch verify pass
reporting byte-identical products for BOTH protocols and on the binary
protocol's peak effective goodput — achieved x (1 - shed) — clearing
5x the text protocol's.

--history skips the harness entirely and reads every BENCH_PR*.json
already at the repo root, printing one cross-PR trajectory table so the
speedup story is readable in one place instead of N disconnected files.

Usage:
    tools/bench_json.py --build-dir build --pr 7     # full workload
    tools/bench_json.py --build-dir build --quick    # CI smoke workload
    tools/bench_json.py --build-dir build --pr 10    # blast load curve
    tools/bench_json.py --history                    # cross-PR table
"""

import argparse
import json
import os
import pathlib
import platform
import re
import subprocess
import sys
import tempfile


def run_harness(binary, extra_args):
    cmd = [str(binary)] + extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"{' '.join(cmd)} exited with {proc.returncode}")
    return json.loads(proc.stdout)


def git_commit(repo_root):
    try:
        out = subprocess.run(
            ["git", "-C", str(repo_root), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def _best_speedup(entries, key):
    """Largest `key` across a section's entries, or None."""
    best = None
    for entry in entries:
        value = entry.get(key)
        if value is None:
            continue
        if best is None or value > best:
            best = value
    return best


def _entry_speedup(entries, key, **match):
    """`key` from the first entry matching every `match` field, or None."""
    for entry in entries:
        if all(entry.get(k) == v for k, v in match.items()):
            return entry.get(key)
    return None


# Offered-load points (records/sec, totals across clients). The top
# point sits far past text saturation so both protocols are measured at
# overload and the goodput ratio compares like with like.
_BLAST_CURVE = "2000,20000,200000,2000000"
_BLAST_POINT_FIELDS = (
    "offered_rps", "achieved_rps", "shed_fraction", "p50_ms", "p95_ms",
    "p99_ms", "records_sent", "records_accepted", "records_refused",
    "elapsed_seconds")


def _peak_goodput(curve):
    """Peak effective goodput over a curve: max achieved x (1 - shed)."""
    return max(p["achieved_rps"] * (1.0 - p["shed_fraction"])
               for p in curve["points"])


def validate_blast(report):
    """Schema + identity gates for a blast report. Raises SystemExit on
    any violation; returns the (text, binary) peak goodputs."""
    verify = report.get("verify", {})
    if not verify.get("ran"):
        raise SystemExit("blast ran without the verify pass — nothing "
                         "ties the load numbers to correct products; "
                         "refusing to record")
    if not (verify.get("text_identical") and verify.get("binary_identical")):
        raise SystemExit("blast verify: served products differ from batch "
                         "discover (text_identical=%s binary_identical=%s) "
                         "— refusing to record"
                         % (verify.get("text_identical"),
                            verify.get("binary_identical")))
    curves = {c.get("protocol"): c for c in report.get("curves", [])}
    for proto in ("text", "binary"):
        curve = curves.get(proto)
        if curve is None:
            raise SystemExit(f"blast report has no {proto} curve")
        points = curve.get("points", [])
        if len(points) < 4:
            raise SystemExit(
                f"{proto} curve has {len(points)} offered-load points; "
                "a saturation curve needs at least 4")
        for point in points:
            for field in _BLAST_POINT_FIELDS:
                if field not in point:
                    raise SystemExit(
                        f"{proto} point is missing '{field}'")
            if not 0.0 <= point["shed_fraction"] <= 1.0:
                raise SystemExit(
                    f"{proto} shed_fraction {point['shed_fraction']} "
                    "out of [0, 1] — torn counters; refusing to record")
            if point["achieved_rps"] < 0 or point["records_sent"] < 0:
                raise SystemExit(f"{proto} point has negative counters")
    text_peak = _peak_goodput(curves["text"])
    binary_peak = _peak_goodput(curves["binary"])
    if text_peak <= 0:
        raise SystemExit("text curve achieved no goodput at all")
    if binary_peak < 5.0 * text_peak:
        raise SystemExit(
            "binary peak effective goodput %.0f rec/s is under 5x the "
            "text protocol's %.0f rec/s — the batched binary path is "
            "not paying for itself; refusing to record"
            % (binary_peak, text_peak))
    return text_peak, binary_peak


def run_blast(args, repo_root):
    """The --pr 10 path: drive `tcomp blast`, gate, record."""
    binary = pathlib.Path(args.build_dir) / "tools" / "tcomp"
    if not binary.exists():
        raise SystemExit(
            f"{binary} not found — build first: cmake --build {args.build_dir}")
    objects = args.objects if args.objects is not None else 100
    snapshots = args.snapshots if args.snapshots is not None else 30
    seconds = 0.5 if args.quick else 2.0
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        report_path = tmp.name
    try:
        cmd = [str(binary), "blast",
               "--clients", "4",
               "--curve", _BLAST_CURVE,
               "--seconds", str(seconds),
               "--objects", str(objects),
               "--snapshots", str(snapshots),
               "--epsilon", "20", "--mu", "3",
               "--min-size", "3", "--min-duration", "2",
               "--json", report_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"tcomp blast exited with {proc.returncode}")
        report = json.loads(pathlib.Path(report_path).read_text())
    finally:
        try:
            os.unlink(report_path)
        except OSError:
            pass

    text_peak, binary_peak = validate_blast(report)
    report["config"] = {
        "objects": objects,
        "snapshots": snapshots,
        "clients": report.get("clients"),
        "batch_records": report.get("batch_records"),
        "seconds_per_point": report.get("seconds_per_point"),
        "quick": args.quick,
    }
    report["summary"] = {
        "text_peak_goodput_rps": text_peak,
        "binary_peak_goodput_rps": binary_peak,
        "binary_vs_text": binary_peak / text_peak,
    }
    report["provenance"] = {
        "commit": git_commit(repo_root),
        "machine": platform.machine(),
        "system": platform.system(),
        "hardware_threads": os.cpu_count(),
    }
    out_path = pathlib.Path(
        args.out if args.out is not None
        else repo_root / f"BENCH_PR{args.pr}.json")
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(f"  verify: {report['verify']['records']} records -> "
          f"{report['verify']['companions']} companions, both protocols "
          "byte-identical to batch discover")
    for curve in report["curves"]:
        for point in curve["points"]:
            print(f"  {curve['protocol']:>6} offered {point['offered_rps']:>9.0f}"
                  f" rec/s: achieved {point['achieved_rps']:>9.0f}, "
                  f"shed {100.0 * point['shed_fraction']:5.1f}%, "
                  f"p99 {point['p99_ms']:.3f} ms")
    print(f"  goodput: text {text_peak:.0f} rec/s, binary {binary_peak:.0f} "
          f"rec/s ({binary_peak / text_peak:.1f}x)")
    return 0


def history(repo_root):
    """Print the cross-PR speedup trajectory from every BENCH_PR*.json.

    Each column is the headline number of the PR that introduced it:
    intersect/istep (PR 4 bitset kernels), incr-cluster (PR 6 carried
    state), shard-best (PR 7 sharded C-step), soa-cluster (PR 9 SoA
    ε-filter). Older records simply lack the newer sections — those
    cells print '-', which is the point of the table: you can see when
    each axis of the trajectory came online.
    """
    records = []
    for path in repo_root.glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if not m:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"  (skipping {path.name}: {err})", file=sys.stderr)
            continue
        records.append((int(m.group(1)), data))
    if not records:
        print("no BENCH_PR*.json records at the repo root")
        return 1
    records.sort()

    def fmt(value):
        return f"{value:.2f}x" if value is not None else "-"

    header = (f"{'PR':>4} {'commit':>8} {'objects':>8} {'intersect':>10} "
              f"{'istep':>7} {'incr-cluster':>13} {'shard-best':>11} "
              f"{'soa-cluster':>12} {'blast-wire':>11}")
    print(header)
    print("-" * len(header))
    for pr, data in records:
        commit = data.get("provenance", {}).get("commit", "?")
        objects = data.get("config", {}).get("objects", "?")
        micro = data.get("micro", {})
        intersect = micro.get("intersect_speedup")
        istep = _entry_speedup(data.get("e2e", []), "istep_speedup",
                               algorithm="SC")
        incr = _entry_speedup(data.get("incremental", []), "cluster_speedup",
                              algorithm="SC")
        shard = _best_speedup(data.get("sharded", []), "speedup_vs_1")
        soa_entries = data.get("soa", {}).get("e2e", [])
        soa = _entry_speedup(soa_entries, "cluster_speedup",
                             scenario="coherent")
        # PR 10 blast records: binary-vs-text peak effective goodput.
        blast = data.get("summary", {}).get("binary_vs_text")
        print(f"{pr:>4} {commit:>8} {objects:>8} {fmt(intersect):>10} "
              f"{fmt(istep):>7} {fmt(incr):>13} {fmt(shard):>11} "
              f"{fmt(soa):>12} {fmt(blast):>11}")
    return 0


def main():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory containing bench/")
    parser.add_argument("--pr", type=int, default=4,
                        help="PR number naming the output record "
                             "(BENCH_PR<N>.json at the repo root)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (overrides --pr naming)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI lane)")
    parser.add_argument("--reps", type=int, default=9,
                        help="end-to-end repetitions per kernel mode")
    parser.add_argument("--objects", type=int, default=None,
                        help="override the e2e stream population")
    parser.add_argument("--snapshots", type=int, default=None,
                        help="override the e2e stream length")
    parser.add_argument("--history", action="store_true",
                        help="print the cross-PR speedup trajectory from "
                             "existing BENCH_PR*.json records and exit")
    parser.add_argument("--blast", action="store_true",
                        help="run the `tcomp blast` service saturation "
                             "curve instead of the perf harness "
                             "(implied by --pr 10)")
    args = parser.parse_args()

    if args.history:
        return history(repo_root)
    if args.blast or args.pr == 10:
        return run_blast(args, repo_root)

    binary = pathlib.Path(args.build_dir) / "bench" / "bench_perf_json"
    if not binary.exists():
        raise SystemExit(
            f"{binary} not found — build first: cmake --build {args.build_dir}")

    harness_args = ["--reps", str(args.reps)]
    if args.quick:
        harness_args.append("--quick")
    if args.objects is not None:
        harness_args += ["--objects", str(args.objects)]
    if args.snapshots is not None:
        harness_args += ["--snapshots", str(args.snapshots)]
    result = run_harness(binary, harness_args)

    config = result["config"]
    if config.get("warmup_iters") is None or config["warmup_iters"] < 1:
        raise SystemExit("harness ran without warm-up iterations — cold-start "
                         "numbers are not comparable; refusing to record")

    micro = result["micro"]
    if not (micro["intersect_checksums_match"]
            and micro["closedness_checksums_match"]):
        raise SystemExit("micro checksums disagree: kernels are not a "
                         "pure optimization — refusing to record")
    for entry in result["e2e"]:
        if not entry["identical_counters"]:
            raise SystemExit(f"{entry['algorithm']}: intersection counters "
                             "differ across kernel modes — refusing to record")
    for entry in result.get("incremental", []):
        if not entry["identical_products"]:
            raise SystemExit(f"{entry['algorithm']}: incremental clustering "
                             "changed the products — refusing to record")
        if not 0.0 <= entry["reuse_ratio"] <= 1.0:
            raise SystemExit(f"{entry['algorithm']}: reuse_ratio "
                             f"{entry['reuse_ratio']} out of [0, 1] — torn "
                             "counters; refusing to record")
    for entry in result.get("sharded", []):
        if not entry["identical_products"]:
            raise SystemExit(
                f"sharded {entry['scenario']} @ {entry['shards']} shards: "
                "companions differ from the single-shard baseline — the "
                "decomposition is not product-preserving; refusing to record")

    soa = result.get("soa", {})
    if soa:
        if not soa["micro"]["checksums_match"]:
            raise SystemExit("SoA eps-filter micro checksums disagree with "
                             "the scalar walk — refusing to record")
        for entry in soa.get("e2e", []):
            if not entry["identical_products"]:
                raise SystemExit(
                    f"soa {entry['scenario']} ({entry['algorithm']}): "
                    "products or distance_ops differ across SoA modes — "
                    "refusing to record")

    stage_metrics = result.get("stage_metrics", {})
    histograms = stage_metrics.get("histograms", {})
    if not histograms:
        raise SystemExit("harness emitted no stage histograms — the obs "
                         "instrumentation is wired out; refusing to record")
    for name, snap in histograms.items():
        if snap["count"] > 0 and sum(snap["buckets"]) != snap["count"]:
            raise SystemExit(f"{name}: bucket counts do not sum to count "
                             "— torn histogram snapshot in a single-threaded "
                             "run; refusing to record")

    result["provenance"] = {
        "commit": git_commit(repo_root),
        "machine": platform.machine(),
        "system": platform.system(),
        "hardware_threads": os.cpu_count(),
    }

    out_path = pathlib.Path(
        args.out if args.out is not None
        else repo_root / f"BENCH_PR{args.pr}.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    print(f"wrote {out_path}")
    print(f"  micro: intersect {micro['intersect_speedup']:.1f}x, "
          f"closedness {micro['closedness_speedup']:.1f}x")
    for entry in result["e2e"]:
        print(f"  e2e {entry['algorithm']}: "
              f"istep {entry['istep_speedup']:.2f}x, "
              f"normalized {entry['norm_speedup']:.3f}x")
    # Informational, not gated: the incremental layer's wins depend on
    # stream coherence, which CI machines cannot promise to reproduce.
    for entry in result.get("incremental", []):
        print(f"  incremental {entry['algorithm']}: "
              f"cluster {entry['cluster_speedup']:.2f}x, "
              f"total {entry['total_speedup']:.2f}x, "
              f"reuse {entry['reuse_ratio']:.2f}")
    for entry in result.get("sharded", []):
        print(f"  sharded {entry['scenario']} @ {entry['shards']}: "
              f"total {entry['speedup_vs_1']:.2f}x, "
              f"cluster {entry['cluster_speedup_vs_1']:.2f}x, "
              f"halo {entry['halo_objects']}")
    if soa:
        print(f"  soa micro: batch {soa['micro']['batch_speedup']:.2f}x, "
              f"gather {soa['micro']['gather_speedup']:.2f}x")
        for entry in soa.get("e2e", []):
            print(f"  soa {entry['scenario']} ({entry['algorithm']}): "
                  f"cluster {entry['cluster_speedup']:.2f}x, "
                  f"total {entry['total_speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
