#!/usr/bin/env python3
"""tcomp_lint — project-invariant lint for the tcomp codebase.

Enforces the invariants clang-tidy cannot express, all of which protect
the repo's two load-bearing guarantees: no exceptions escape the library
(every fallible path returns Status), and discovery output is
bit-identical across runs, thread counts, and daemon-vs-batch execution.

Rules (all scoped to library code, src/ and tools/, unless noted):

  no-throw            `throw` is forbidden in library code; fallible paths
                      return Status/StatusOr. (Scope: src/)
  no-crt-rand         rand()/srand()/drand48() and the <random> engines are
                      forbidden everywhere; all randomness goes through the
                      deterministic, platform-stable Pcg32 in util/random.h.
                      (Scope: src/, tools/, bench/, examples/, tests/)
  unordered-iter      Range-for over a std::unordered_{map,set,...} is
                      hash-order iteration: if it feeds an output file,
                      checkpoint, or any ordering-sensitive path, results
                      stop being reproducible. Every such loop must either
                      be rewritten over a sorted copy or carry an explicit
                      allowlist annotation asserting order-insensitivity:
                          // tcomp-lint: allow(unordered-iter): <why safe>
                      (Scope: src/, tools/)
  shard-unordered     In src/shard/ the bar is higher than unordered-iter:
                      declaring a std::unordered_{map,set,...} at all is a
                      finding, iterated or not. Every container on the
                      shard path feeds the merge stage, whose contract is
                      byte-identical output at any shard count — one
                      hash-ordered walk that reaches a cluster id, a
                      neighbor list, or a stitching order breaks it, and
                      merge code is refactored often enough that "it is
                      not iterated today" does not hold. Use sorted
                      vectors or std::map, or annotate:
                          // tcomp-lint: allow(shard-unordered): <why safe>
                      (Scope: src/shard/)
  no-naked-new        `new`/`delete` expressions are forbidden; use
                      std::make_unique/std::vector. `= delete` declarations
                      are fine. (Scope: src/, tools/)
  sqrt-eps            Comparing a square-root distance (std::sqrt(...) or
                      Distance(...)) against an ε threshold duplicates the
                      neighborhood predicate: the backends agree on exact-ε
                      boundaries only because they all decide membership
                      through the shared WithinEps (core/dbscan.h), which
                      compares squared distances and never rounds through a
                      root. A sqrt-based comparison may disagree with it in
                      the last ulp. Use WithinEps, or annotate why the exact
                      root is required:
                          // tcomp-lint: allow(sqrt-eps): <why exact>
                      (Scope: src/, tools/)

Any rule can be suppressed on a specific line (or the line above it) with
    // tcomp-lint: allow(<rule>): <reason>
The reason is mandatory — an allowlist entry is a reviewed claim, not an
escape hatch.

Usage: tools/tcomp_lint.py [REPO_ROOT]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

# Directories scanned per rule. Library scope is src/ + tools/; the
# randomness rule also covers tests and benches because a nondeterministic
# test input invalidates the differential suites.
LIB_DIRS = ("src", "tools")
ALL_DIRS = ("src", "tools", "bench", "examples", "tests")

ALLOW_RE = re.compile(r"tcomp-lint:\s*allow\(([a-z-]+)\)\s*:\s*\S")
ALLOW_NO_REASON_RE = re.compile(r"tcomp-lint:\s*allow\(([a-z-]+)\)\s*(?!:)")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*?>\s*[&*]?\s*"
    r"(\w+)\s*[;={(,)]"
)
# Accessors known (by project convention) to expose an unordered container;
# regex type resolution cannot see through them.
UNORDERED_ACCESSORS = ("entries",)

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# A comparison operator that is not <<, >>, -> or a template bracket pair
# in the common cases; heuristic, but scoped to statements that also call
# sqrt()/Distance() so the false-positive surface is tiny.
CMP = r"(?:<=|>=|(?<![-<])<(?!<)|(?<![->])>(?!>))"
# Root-taking calls. \b keeps SquaredDistance/SegmentDistance/
# NetworkDistance out: those are different metrics with their own
# thresholds, not the point-ε predicate.
ROOT_CALL_RE = re.compile(r"\b(?:std\s*::\s*)?sqrt\s*\(|\bDistance\s*\(")
EPS_IDENT = r"\b[Ee]ps\w*"
ROOT_CMP_AFTER_RE = re.compile(CMP + r"[^;]*?" + EPS_IDENT)
ROOT_CMP_BEFORE_RE = re.compile(EPS_IDENT + r"[^;]*?" + CMP + r"[^;]*$")
ROOT_ASSIGN_RE = re.compile(
    r"\b(?:const\s+)?(?:double|float|auto)\s+(\w+)\s*=\s*[^;]*?"
    r"(?:\bsqrt|\bDistance)\s*\(")

CPP_EXTS = (".cc", ".h")


def strip_comments_and_strings(text):
    """Replaces comment/string contents with spaces, preserving offsets and
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def is_allowed(raw_lines, lineno, rule, findings, path):
    """True if `lineno` (1-based) or the line above carries an allow()
    annotation for `rule`. An annotation without a reason is itself a
    finding."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            line = raw_lines[ln - 1]
            m = ALLOW_RE.search(line)
            if m and m.group(1) == rule:
                return True
            m = ALLOW_NO_REASON_RE.search(line)
            if m and m.group(1) == rule:
                findings.append(
                    (path, ln, "allow-without-reason",
                     "allow(%s) annotation needs a ': <reason>'" % rule))
                return True  # suppressed, but the missing reason is flagged
    return False


def extract_range_fors(code):
    """Yields (line_offset, range_expression) for every range-based for.
    Handles nested parens inside the range expression."""
    for m in re.finditer(r"\bfor\s*\(", code):
        start = m.end()  # just past '('
        depth = 1
        i = start
        colon = -1
        while i < len(code) and depth > 0:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == ";" and depth == 1:
                colon = -1
                break  # classic three-clause for
            elif c == ":" and depth == 1 and colon < 0:
                # skip '::'
                if code[i + 1: i + 2] == ":" or code[i - 1: i] == ":":
                    i += 1
                    continue
                colon = i
            i += 1
        if colon >= 0 and depth == 0:
            yield m.start(), code[colon + 1: i - 1]


def range_expr_unordered(range_expr, unordered_vars):
    """Returns a description of the unordered container iterated by
    `range_expr`, or None. Subscripted expressions (`map[key]`) iterate the
    mapped *value*, not the map, and are skipped; calls are only matched
    against the known unordered accessors."""
    expr = range_expr.strip()
    if "[" in expr:
        return None
    if "(" in expr:
        for acc in UNORDERED_ACCESSORS:
            if re.search(r"\.\s*%s\s*\(\s*\)\s*$" % acc, expr):
                return "'%s()' (unordered by convention)" % acc
        return None
    if "unordered_map" in expr or "unordered_set" in expr:
        return "an unordered container"
    hits = set(IDENT_RE.findall(expr)) & unordered_vars
    if hits:
        return "'%s'" % sorted(hits)[0]
    return None


def check_file(path, rel, findings):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code = strip_comments_and_strings(text)
    top = rel.split(os.sep, 1)[0]

    # Member containers are declared in the paired header; fold those
    # declarations in so `for (... : window_)` in the .cc is seen.
    paired_decls = ""
    if path.endswith(".cc"):
        header = path[:-3] + ".h"
        if os.path.exists(header):
            with open(header, encoding="utf-8") as f:
                paired_decls = strip_comments_and_strings(f.read())

    def report(rule, lineno, message):
        if not is_allowed(raw_lines, lineno, rule, findings, rel):
            findings.append((rel, lineno, rule, message))

    # --- no-throw (src/ only: tests may exercise gtest internals) ---
    if top == "src":
        for m in re.finditer(r"\bthrow\b", code):
            report("no-throw", line_of(code, m.start()),
                   "library code must return Status, not throw")

    # --- no-crt-rand (everywhere) ---
    for m in re.finditer(
            r"\b(?:std\s*::\s*)?(?:(rand|srand|drand48|lrand48)\s*\(|"
            r"(random_device|mt19937(?:_64)?|default_random_engine|"
            r"minstd_rand0?)\b)",
            code):
        report("no-crt-rand", line_of(code, m.start()),
               "'%s' is nondeterministic or platform-varying; use "
               "tcomp::Pcg32 (util/random.h)"
               % (m.group(1) or m.group(2)))

    # --- shard-unordered (src/shard/ only) ---
    if rel.replace(os.sep, "/").startswith("src/shard/"):
        for m in re.finditer(
                r"\bunordered_(?:map|set|multimap|multiset)\b", code):
            report("shard-unordered", line_of(code, m.start()),
                   "hash-ordered container on the shard path; the merge "
                   "contract is byte-identical output at any shard count — "
                   "use a sorted vector or std::map, or annotate why hash "
                   "order cannot reach the merge")

    if top in LIB_DIRS:
        # --- unordered-iter ---
        unordered_vars = set(UNORDERED_DECL_RE.findall(code))
        unordered_vars |= set(UNORDERED_DECL_RE.findall(paired_decls))
        for offset, range_expr in extract_range_fors(code):
            lineno = line_of(code, offset)
            hit = range_expr_unordered(range_expr, unordered_vars)
            if hit:
                report("unordered-iter", lineno,
                       "range-for over %s iterates in hash order; sort "
                       "first or annotate why order cannot reach an "
                       "output/ordering path" % hit)

        # --- no-naked-new ---
        for m in re.finditer(r"\bnew\b", code):
            report("no-naked-new", line_of(code, m.start()),
                   "naked 'new'; use std::make_unique or a container")
        for m in re.finditer(r"\bdelete\b(?!\s*\[)", code):
            # permit `= delete` declarations
            before = code[:m.start()].rstrip()
            if before.endswith("="):
                continue
            report("no-naked-new", line_of(code, m.start()),
                   "naked 'delete'; owning pointers must be smart pointers")
        for m in re.finditer(r"\bdelete\s*\[", code):
            report("no-naked-new", line_of(code, m.start()),
                   "naked 'delete[]'; use std::vector or std::unique_ptr[]")

        # --- sqrt-eps ---
        sqrt_eps_msg = (
            "root distance compared against an ε threshold; decide "
            "membership through the shared WithinEps (core/dbscan.h) on "
            "squared distances, or annotate why the exact root is required")
        # Same-statement form: sqrt(...)/Distance(...) and the ε compare in
        # one expression.
        for m in ROOT_CALL_RE.finditer(code):
            pos = m.start()
            stmt_end = code.find(";", pos)
            if stmt_end < 0:
                stmt_end = min(len(code), pos + 200)
            stmt_start = max(code.rfind(";", 0, pos),
                             code.rfind("{", 0, pos),
                             code.rfind("}", 0, pos)) + 1
            if (ROOT_CMP_AFTER_RE.search(code, pos, stmt_end)
                    or ROOT_CMP_BEFORE_RE.search(code[stmt_start:pos])):
                report("sqrt-eps", line_of(code, pos), sqrt_eps_msg)
        # Assign-then-compare form: `double d = Distance(...);` followed
        # shortly by `d > eps`-style use of the named root.
        for m in ROOT_ASSIGN_RE.finditer(code):
            var = re.escape(m.group(1))
            stmt_end = code.find(";", m.start())
            if stmt_end < 0:
                continue
            window = code[stmt_end:stmt_end + 400]
            hit = (re.search(
                       r"\b%s\b[^;]*?%s[^;]*?%s" % (var, CMP, EPS_IDENT),
                       window)
                   or re.search(
                       EPS_IDENT + r"[^;]*?" + CMP + r"[^;]*?\b%s\b" % var,
                       window))
            if hit:
                report("sqrt-eps", line_of(code, stmt_end + hit.start()),
                       sqrt_eps_msg)


SELF_TEST_CASES = [
    # (snippet, rule expected to fire; None = must stay clean). A third
    # element overrides the checked path (default src/case.cc) so
    # directory-scoped rules can be exercised.
    ("void F() { throw 1; }", "no-throw"),
    ("// a comment may say throw freely\nint x;", None),
    ("const char* s = \"don't throw\";", None),
    ("int R() { return rand() % 6; }", "no-crt-rand"),
    ("#include <random>\nstd::mt19937 gen(42);", "no-crt-rand"),
    ("std::unordered_map<int, int> m;\n"
     "void F() { for (const auto& [k, v] : m) {} }", "unordered-iter"),
    ("std::unordered_map<int, int> m;\n"
     "// tcomp-lint: allow(unordered-iter): feeds an order-free sum\n"
     "void F() { for (const auto& [k, v] : m) {} }", None),
    ("std::unordered_map<int, std::vector<int>> m;\n"
     "void F() { for (int v : m[3]) {} }", None),  # element, not the map
    ("std::vector<int> v;\nvoid F() { for (int x : v) {} }", None),
    ("int* p = new int(3);", "no-naked-new"),
    ("void F(int* p) { delete p; }", "no-naked-new"),
    ("struct S { S(const S&) = delete; };", None),
    ("void F() { if (std::sqrt(d2) <= eps) {} }", "sqrt-eps"),
    ("void F() { if (Distance(a, b) > params.epsilon) return; }",
     "sqrt-eps"),
    ("void F() { if (eps < Distance(a, b)) return; }", "sqrt-eps"),
    ("void F() {\n"
     "  double d = Distance(a.center(), b.center());\n"
     "  if (d - a.radius - b.radius > eps) return;\n"
     "}", "sqrt-eps"),
    ("void F() {\n"
     "  double d = Distance(a.center(), b.center());\n"
     "  // tcomp-lint: allow(sqrt-eps): lemma bound needs the true root\n"
     "  if (d - a.radius - b.radius > eps) return;\n"
     "}", None),
    # Squared comparison through the shared predicate: the sanctioned form.
    ("bool In(Point a, Point b, double eps2) {\n"
     "  return SquaredDistance(a, b) <= eps2;\n"
     "}", None),
    # Roots without an ε compare (geometry, generators) are fine.
    ("void F() { double r = radius * std::sqrt(u); place(r); }", None),
    # shard-unordered: in src/shard/ the mere declaration is a finding...
    ("std::unordered_map<uint32_t, int> owner_;", "shard-unordered",
     os.path.join("src", "shard", "case.cc")),
    # ...even un-iterated inside a function body...
    ("void F() { std::unordered_set<uint32_t> seen; seen.insert(3); }",
     "shard-unordered", os.path.join("src", "shard", "case.cc")),
    # ...unless annotated with a reviewed reason.
    ("// tcomp-lint: allow(shard-unordered): drained via sorted key copy\n"
     "std::unordered_map<uint32_t, int> owner_;", None,
     os.path.join("src", "shard", "case.cc")),
    # Ordered containers on the shard path are the sanctioned form.
    ("std::vector<uint32_t> owner_;\nstd::map<uint32_t, int> rank_;", None,
     os.path.join("src", "shard", "case.cc")),
    # Outside src/shard/ an un-iterated declaration stays legal (only
    # hash-order *iteration* is the library-wide hazard).
    ("std::unordered_map<int, int> m;\nvoid F() { m[1] = 2; }", None),
]


def self_test():
    import tempfile
    failures = 0
    for i, case in enumerate(SELF_TEST_CASES):
        snippet, expected = case[0], case[1]
        rel = case[2] if len(case) > 2 else os.path.join("src", "case.cc")
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path))
            with open(path, "w", encoding="utf-8") as f:
                f.write(snippet + "\n")
            findings = []
            check_file(path, rel, findings)
            rules = {rule for (_, _, rule, _) in findings}
            ok = (expected in rules) if expected else not rules
            if not ok:
                failures += 1
                print("self-test case %d FAILED: expected %s, got %s\n%s"
                      % (i, expected or "clean", sorted(rules) or "clean",
                         snippet), file=sys.stderr)
    if failures:
        print("tcomp_lint --self-test: %d failure(s)" % failures,
              file=sys.stderr)
        return 1
    print("tcomp_lint --self-test: OK (%d cases)" % len(SELF_TEST_CASES))
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("tcomp_lint: no src/ under %s" % root, file=sys.stderr)
        return 2

    findings = []
    scanned = 0
    for top in ALL_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CPP_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                check_file(path, rel, findings)
                scanned += 1

    for rel, lineno, rule, message in sorted(findings):
        print("%s:%d: [%s] %s" % (rel, lineno, rule, message))
    if findings:
        print("tcomp_lint: %d finding(s) in %d files scanned"
              % (len(findings), scanned), file=sys.stderr)
        return 1
    print("tcomp_lint: OK (%d files scanned)" % scanned)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
