#!/usr/bin/env python3
"""tcomp_lint — legacy entry point, now a thin wrapper over tools/analyze.

The regex rule engine that used to live here was replaced by the
token/scope-aware analyzer in tools/analyze/ (see DESIGN.md §1.9). The
original six rules — no-throw, no-crt-rand, unordered-iter,
shard-unordered, no-naked-new, sqrt-eps — survive unchanged in name,
scope, and suppression contract (`// tcomp-lint: allow(<rule>): <reason>`),
alongside the new whole-project passes (include-layer, include-cycle,
lock-order, atomic-order, atomic-strong-order, wallclock, addr-order,
allow-without-reason, stale-allow).

This wrapper keeps the historical invocations working:

    tools/tcomp_lint.py [ROOT]       analyze the repo
    tools/tcomp_lint.py --self-test  run the analyzer's rule corpus

Anything else is forwarded verbatim; see the usage text in
tools/analyze/cli.py for the full flag set.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analyze.cli import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
