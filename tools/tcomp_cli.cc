// tcomp — command-line interface to the traveling-companion library.
//
// Subcommands:
//   generate  write a synthetic dataset as record CSV (+ ground truth)
//   discover  run companion discovery over a record CSV
//   help      usage
//
// Examples:
//   tcomp generate --dataset d2 --snapshots 60 --out d2.csv --truth d2.truth
//   tcomp discover --csv d2.csv --algo bu --epsilon 24 --mu 5
//       --min-size 10 --min-duration 10 --window-seconds 60
//       --truth d2.truth --timeline
//   tcomp discover --csv d2.csv --algo bu ... --save-state s.ckpt
//   tcomp discover --csv d2_rest.csv --algo bu ... --load-state s.ckpt

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/checkpoint.h"
#include "core/discoverer.h"
#include "obs/discovery_metrics.h"
#include "core/timeline.h"
#include "data/synthetic_gen.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "eval/tuning.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "service/binary_protocol.h"
#include "service/blast.h"
#include "service/lifecycle.h"
#include "service/pipeline.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"
#include "stream/inactive_period.h"
#include "stream/sliding_window.h"
#include "util/flags.h"
#include "util/timer.h"

namespace tcomp {
namespace {

int Usage() {
  std::printf(
      "tcomp — traveling companion discovery (ICDE 2012 reproduction)\n"
      "\n"
      "  tcomp generate --dataset d1|d2|d3|d4 [--snapshots N]\n"
      "      --out records.csv [--truth truth.txt] [--seconds-per-snapshot S]\n"
      "  tcomp discover --csv records.csv [--algo ci|sc|bu]\n"
      "      --epsilon E --mu M --min-size S --min-duration T\n"
      "      [--threads N]  (parallel snapshot clustering; results are\n"
      "                      identical at every N, 1 = serial, default 1)\n"
      "      [--window-seconds W | --window-objects N]\n"
      "      [--inactive K] [--truth truth.txt] [--timeline]\n"
      "      [--out-json FILE] [--out-csv FILE]\n"
      "      [--stats-json FILE]  (per-stage latency histograms + counters)\n"
      "      [--slow-snapshot-ms MS]  (warn with stage breakdown when a\n"
      "                                snapshot exceeds MS; 0 = off)\n"
      "      [--save-state FILE] [--load-state FILE] [--quiet]\n"
      "  tcomp suggest --csv records.csv [--k K] [--window-seconds W]\n"
      "  tcomp serve [--port P] [--port-file FILE] [--algo ci|sc|bu]\n"
      "      --epsilon E --mu M --min-size S --min-duration T [--threads N]\n"
      "      [--shards N]  (sharded snapshot clustering; products are\n"
      "                     byte-identical at every N, 1 = single worker,\n"
      "                     default 1; BU falls back to 1 with a warning)\n"
      "      [--window-seconds W | --window-objects N] [--inactive K]\n"
      "      [--queue-capacity C] [--backpressure block|shed|reject]\n"
      "      [--lateness SECONDS] [--checkpoint FILE]\n"
      "      [--checkpoint-every SNAPSHOTS] [--read-timeout-ms MS]\n"
      "      [--write-timeout-ms MS] [--write-window-bytes B]\n"
      "      [--max-connections N] [--slow-snapshot-ms MS]\n"
      "      [--admission-max-shed-rate F] [--admission-max-p99-ms MS]\n"
      "      [--admission-policy reject|shed]  (new connections are\n"
      "                     turned away while the pipeline is overloaded)\n"
      "  tcomp feed --csv records.csv --port P [--rate RECORDS_PER_SEC]\n"
      "      [--binary] [--batch N]  (length-prefixed INGEST batches over\n"
      "                     the binary protocol; N records per frame)\n"
      "      [--flush] [--query companions|stats|buddies|metrics]\n"
      "      [--out FILE] [--shutdown] [--quiet]\n"
      "  tcomp blast [--clients N] [--curve RPS,RPS,...] [--seconds S]\n"
      "      [--protocol text|binary|both] [--batch N] [--objects N]\n"
      "      [--snapshots N] [--seed N] [--no-verify] [--json FILE]\n"
      "      [--algo ci|sc|bu] [--epsilon E] [--mu M] [--min-size S]\n"
      "      [--min-duration T] [--threads N] [--queue-capacity C]\n"
      "      [--window-seconds W | --window-objects N] [--inactive K]\n"
      "      (self-hosted saturation benchmark: N paced clients per\n"
      "       offered-load point; reports records/sec, ack latency\n"
      "       percentiles, and shed fraction, plus a serve-vs-batch\n"
      "       product identity check per protocol)\n");
  return 2;
}

/// Strict flag validation: a flag the subcommand does not understand is
/// reported by name and fails the run — identically for every subcommand
/// (a typo like --epsilom must never silently run with defaults).
bool RejectUnknownFlags(const char* command, const FlagParser& flags,
                        std::initializer_list<const char*> allowed) {
  bool ok = true;
  for (const std::string& name : flags.names()) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", command,
                   name.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Reads a flag through the strict parser; a malformed value is reported
/// by name and fails the subcommand — same contract as unknown-flag
/// rejection (`--mu abc` must never silently run with the default).
template <typename T>
bool ReadFlag(const char* command, const FlagParser& flags,
              const char* name, T default_value, T* out) {
  Status s = flags.GetStrict(name, default_value, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", command, s.ToString().c_str());
    return false;
  }
  return true;
}

Status WriteTruth(const std::string& path,
                  const std::vector<ObjectSet>& truth) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (const ObjectSet& group : truth) {
    for (size_t i = 0; i < group.size(); ++i) {
      out << (i ? " " : "") << group[i];
    }
    out << "\n";
  }
  return Status::OK();
}

Status ReadTruth(const std::string& path, std::vector<ObjectSet>* truth) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ObjectSet group;
    std::istringstream row(line);
    ObjectId id;
    while (row >> id) group.push_back(id);
    if (!group.empty()) {
      std::sort(group.begin(), group.end());
      truth->push_back(std::move(group));
    }
  }
  if (in.bad()) {
    // A hard read error also ends the getline loop; only EOF is success.
    return Status::IoError("read error before end of " + path);
  }
  return Status::OK();
}

int Generate(const FlagParser& flags) {
  if (!RejectUnknownFlags("generate", flags,
                          {"dataset", "out", "truth", "snapshots", "seed",
                           "seconds-per-snapshot"})) {
    return Usage();
  }
  std::string which = flags.GetString("dataset", "d3");
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return Usage();
  }
  int snapshots = 0;
  int64_t seed_raw = 0;
  if (!ReadFlag("generate", flags, "snapshots", 0, &snapshots) ||
      !ReadFlag("generate", flags, "seed", int64_t{0}, &seed_raw)) {
    return Usage();
  }
  uint64_t seed = static_cast<uint64_t>(seed_raw);

  Dataset dataset;
  if (which == "d1") {
    dataset = MakeTaxiD1(snapshots > 0 ? snapshots : kD1Snapshots,
                         seed ? seed : 11);
  } else if (which == "d2") {
    dataset = MakeMilitaryD2(snapshots > 0 ? snapshots : kD2Snapshots,
                             seed ? seed : 7);
  } else if (which == "d3") {
    dataset = MakeSyntheticD3(snapshots > 0 ? snapshots : 240,
                              seed ? seed : 42);
  } else if (which == "d4") {
    dataset = MakeSyntheticD4(snapshots > 0 ? snapshots : 60,
                              seed ? seed : 43);
  } else {
    std::fprintf(stderr, "generate: unknown --dataset %s\n", which.c_str());
    return Usage();
  }

  double spacing = 60.0;
  if (!ReadFlag("generate", flags, "seconds-per-snapshot", 60.0, &spacing)) {
    return Usage();
  }
  std::vector<TrajectoryRecord> records =
      StreamToRecords(dataset.stream, spacing);
  Status s = WriteRecordCsv(out_path, records);
  if (!s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records (%zu snapshots, %zu objects) to %s\n",
              records.size(), dataset.stream.size(),
              dataset.stream.empty() ? 0 : dataset.stream[0].size(),
              out_path.c_str());

  std::string truth_path = flags.GetString("truth", "");
  if (!truth_path.empty()) {
    if (dataset.ground_truth.empty()) {
      std::fprintf(stderr,
                   "generate: dataset %s has no ground truth; skipping\n",
                   which.c_str());
    } else {
      Status ts = WriteTruth(truth_path, dataset.ground_truth);
      if (!ts.ok()) {
        std::fprintf(stderr, "generate: %s\n", ts.ToString().c_str());
        return 1;
      }
      std::printf("wrote %zu ground-truth groups to %s\n",
                  dataset.ground_truth.size(), truth_path.c_str());
    }
  }
  std::printf("suggested thresholds: --epsilon %.1f --mu %d\n",
              dataset.default_params.cluster.epsilon,
              dataset.default_params.cluster.mu);
  return 0;
}

int Discover(const FlagParser& flags) {
  if (!RejectUnknownFlags(
          "discover", flags,
          {"csv", "algo", "epsilon", "mu", "min-size", "min-duration",
           "threads", "window-seconds", "window-objects", "inactive",
           "truth", "timeline", "out-json", "out-csv", "stats-json",
           "slow-snapshot-ms", "save-state", "load-state", "quiet"})) {
    return Usage();
  }
  std::string csv = flags.GetString("csv", "");
  if (csv.empty()) {
    std::fprintf(stderr, "discover: --csv is required\n");
    return Usage();
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(csv, &records);
  if (!s.ok()) {
    std::fprintf(stderr, "discover: %s\n", s.ToString().c_str());
    return 1;
  }

  DiscoveryParams params;
  int threads = 1;
  if (!ReadFlag("discover", flags, "epsilon", 20.0,
                &params.cluster.epsilon) ||
      !ReadFlag("discover", flags, "mu", 4, &params.cluster.mu) ||
      !ReadFlag("discover", flags, "min-size", 10,
                &params.size_threshold) ||
      !ReadFlag("discover", flags, "min-duration", 10.0,
                &params.duration_threshold) ||
      !ReadFlag("discover", flags, "threads", 1, &threads)) {
    return Usage();
  }
  if (threads < 1) {
    std::fprintf(stderr, "discover: --threads must be >= 1\n");
    return Usage();
  }
  params.cluster.threads = threads;

  std::string algo_name = flags.GetString("algo", "bu");
  Algorithm algorithm;
  if (algo_name == "ci") {
    algorithm = Algorithm::kClusteringIntersection;
  } else if (algo_name == "sc") {
    algorithm = Algorithm::kSmartClosed;
  } else if (algo_name == "bu") {
    algorithm = Algorithm::kBuddy;
  } else {
    std::fprintf(stderr, "discover: unknown --algo %s\n",
                 algo_name.c_str());
    return Usage();
  }
  auto discoverer = MakeDiscoverer(algorithm, params);

  std::string load_state = flags.GetString("load-state", "");
  if (!load_state.empty()) {
    Status ls = LoadDiscovererFromFile(discoverer.get(), load_state);
    if (!ls.ok()) {
      std::fprintf(stderr, "discover: %s\n", ls.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s (%lld snapshots processed so far)\n",
                load_state.c_str(),
                static_cast<long long>(discoverer->stats().snapshots));
  }

  CompanionTimeline timeline;
  bool want_timeline = false;
  bool quiet = false;
  int window_objects = 100;
  double window_seconds = 60.0;
  int inactive = 0;
  if (!ReadFlag("discover", flags, "timeline", false, &want_timeline) ||
      !ReadFlag("discover", flags, "quiet", false, &quiet) ||
      !ReadFlag("discover", flags, "window-objects", 100,
                &window_objects) ||
      !ReadFlag("discover", flags, "window-seconds", 60.0,
                &window_seconds) ||
      !ReadFlag("discover", flags, "inactive", 0, &inactive)) {
    return Usage();
  }
  if (want_timeline) timeline.Track(discoverer.get());

  // Observability mirrors the daemon path: the stage sink is always
  // attached (timing only — products are differential-tested to be
  // byte-identical with it on), --stats-json dumps the registry at the
  // end, and --slow-snapshot-ms mirrors the serve-side warning log.
  double slow_snapshot_ms = 0.0;
  if (!ReadFlag("discover", flags, "slow-snapshot-ms", 0.0,
                &slow_snapshot_ms)) {
    return Usage();
  }
  std::string stats_json = flags.GetString("stats-json", "");
  MetricsRegistry registry;
  MetricsStageSink stage_sink(&registry);
  discoverer->set_stage_sink(&stage_sink);

  SlidingWindowOptions wopts;
  if (flags.Has("window-objects")) {
    wopts.mode = WindowMode::kEqualWidth;
    wopts.min_objects = static_cast<size_t>(window_objects);
  } else {
    wopts.mode = WindowMode::kEqualLength;
    wopts.window_length = window_seconds;
  }
  SlidingWindowSnapshotter window(wopts);
  InactivePeriodFiller filler(inactive);
  int64_t snapshots = 0;
  std::vector<Snapshot> ready;
  auto process = [&](const Snapshot& snap) {
    std::vector<Companion> newly;
    Timer close_timer;
    close_timer.Start();
    discoverer->ProcessSnapshot(filler.Fill(snap), &newly);
    close_timer.Stop();
    stage_sink.RecordStage(Stage::kSnapshotClose, close_timer.Seconds());
    ++snapshots;
    double wall_ms = close_timer.Seconds() * 1e3;
    if (slow_snapshot_ms > 0.0 && wall_ms > slow_snapshot_ms) {
      std::fprintf(
          stderr,
          "discover: slow snapshot: index=%lld wall_ms=%.3f "
          "maintain_ms=%.3f cluster_ms=%.3f intersect_ms=%.3f "
          "closure_ms=%.3f objects=%zu\n",
          static_cast<long long>(snapshots), wall_ms,
          stage_sink.last_seconds(Stage::kMaintain) * 1e3,
          stage_sink.last_seconds(Stage::kCluster) * 1e3,
          stage_sink.last_seconds(Stage::kIntersect) * 1e3,
          stage_sink.last_seconds(Stage::kClosure) * 1e3, snap.size());
    }
    if (!quiet) {
      for (const Companion& c : newly) {
        std::printf("[snapshot %lld] companion of %zu objects, together "
                    "%.1f units:",
                    static_cast<long long>(snapshots), c.objects.size(),
                    c.duration);
        for (size_t i = 0; i < std::min<size_t>(8, c.objects.size());
             ++i) {
          std::printf(" %u", c.objects[i]);
        }
        if (c.objects.size() > 8) std::printf(" ...");
        std::printf("\n");
      }
    }
  };
  for (const TrajectoryRecord& r : records) {
    Status ps = window.Push(r, &ready);
    if (!ps.ok()) {
      std::fprintf(stderr, "discover: %s\n", ps.ToString().c_str());
      return 1;
    }
    for (const Snapshot& snap : ready) process(snap);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& snap : ready) process(snap);

  const DiscoveryStats& stats = discoverer->stats();
  std::printf("\n%s over %lld snapshots: %zu distinct companions, "
              "%lld intersections, peak candidate size %lld\n",
              discoverer->name().c_str(),
              static_cast<long long>(stats.snapshots),
              discoverer->log().size(),
              static_cast<long long>(stats.intersections),
              static_cast<long long>(stats.candidate_objects_peak));

  std::string truth_path = flags.GetString("truth", "");
  if (!truth_path.empty()) {
    std::vector<ObjectSet> truth;
    Status ts = ReadTruth(truth_path, &truth);
    if (!ts.ok()) {
      std::fprintf(stderr, "discover: %s\n", ts.ToString().c_str());
      return 1;
    }
    std::vector<ObjectSet> retrieved;
    for (const Companion& c : discoverer->log().companions()) {
      retrieved.push_back(c.objects);
    }
    EffectivenessResult strict = ScoreCompanions(retrieved, truth);
    EffectivenessResult coverage =
        ScoreCompanionsCoverage(retrieved, truth, 0.35);
    std::printf("vs ground truth (%zu groups): one-to-one precision "
                "%.1f%% recall %.1f%%; coverage precision %.1f%%\n",
                truth.size(), 100.0 * strict.precision,
                100.0 * strict.recall, 100.0 * coverage.precision);
  }

  if (want_timeline) {
    std::printf("\ncompanion timeline (%zu distinct sets):\n",
                timeline.distinct_sets());
    int shown = 0;
    for (const CompanionEpisode& e : timeline.Episodes()) {
      if (shown++ >= 15) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  %zu objects, snapshots %lld..%lld (%lld long)\n",
                  e.objects.size(), static_cast<long long>(e.begin),
                  static_cast<long long>(e.end),
                  static_cast<long long>(e.length()));
    }
  }

  std::string out_json = flags.GetString("out-json", "");
  if (!out_json.empty()) {
    Status os = WriteCompanionsJsonFile(discoverer->log().companions(),
                                        out_json);
    if (!os.ok()) {
      std::fprintf(stderr, "discover: %s\n", os.ToString().c_str());
      return 1;
    }
    std::printf("companions written to %s\n", out_json.c_str());
  }
  std::string out_csv = flags.GetString("out-csv", "");
  if (!out_csv.empty()) {
    Status os = WriteCompanionsCsvFile(discoverer->log().companions(),
                                       out_csv);
    if (!os.ok()) {
      std::fprintf(stderr, "discover: %s\n", os.ToString().c_str());
      return 1;
    }
    std::printf("companions written to %s\n", out_csv.c_str());
  }

  if (!stats_json.empty()) {
    ExportDiscoveryMetrics(discoverer->stats(),
                           static_cast<int64_t>(discoverer->log().size()),
                           &registry);
    std::ofstream out(stats_json);
    out << registry.JsonText();
    out.flush();  // the error check must see buffered write failures
    if (!out) {
      std::fprintf(stderr, "discover: cannot write %s\n",
                   stats_json.c_str());
      return 1;
    }
    std::printf("stage metrics written to %s\n", stats_json.c_str());
  }

  std::string save_state = flags.GetString("save-state", "");
  if (!save_state.empty()) {
    Status ss = SaveDiscovererToFile(*discoverer, save_state);
    if (!ss.ok()) {
      std::fprintf(stderr, "discover: %s\n", ss.ToString().c_str());
      return 1;
    }
    std::printf("state saved to %s\n", save_state.c_str());
  }
  return 0;
}

int Suggest(const FlagParser& flags) {
  if (!RejectUnknownFlags("suggest", flags,
                          {"csv", "k", "window-seconds"})) {
    return Usage();
  }
  std::string csv = flags.GetString("csv", "");
  if (csv.empty()) {
    std::fprintf(stderr, "suggest: --csv is required\n");
    return Usage();
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(csv, &records);
  if (!s.ok()) {
    std::fprintf(stderr, "suggest: %s\n", s.ToString().c_str());
    return 1;
  }
  SlidingWindowOptions wopts;
  int k = 4;
  if (!ReadFlag("suggest", flags, "window-seconds", 60.0,
                &wopts.window_length) ||
      !ReadFlag("suggest", flags, "k", 4, &k)) {
    return Usage();
  }
  SlidingWindowSnapshotter window(wopts);
  SnapshotStream stream;
  for (const TrajectoryRecord& r : records) {
    Status ps = window.Push(r, &stream);
    if (!ps.ok()) {
      std::fprintf(stderr, "suggest: %s\n", ps.ToString().c_str());
      return 1;
    }
  }
  window.Flush(&stream);
  TuningSuggestion suggestion = SuggestClusterParams(stream, k);
  std::printf("suggested thresholds from %zu snapshots: --epsilon %.2f "
              "--mu %d  (k-distance knee; ~%.1f%% of objects beyond it)\n",
              stream.size(), suggestion.params.epsilon,
              suggestion.params.mu, 100.0 * suggestion.noise_fraction);
  return 0;
}

/// Shared by serve: parse the discovery/window options exactly as
/// Discover does, so the daemon and batch paths agree flag for flag.
bool ParseDiscoveryOptions(const char* command, const FlagParser& flags,
                           ServicePipelineOptions* opts) {
  int threads = 1;
  if (!ReadFlag(command, flags, "epsilon", 20.0,
                &opts->params.cluster.epsilon) ||
      !ReadFlag(command, flags, "mu", 4, &opts->params.cluster.mu) ||
      !ReadFlag(command, flags, "min-size", 10,
                &opts->params.size_threshold) ||
      !ReadFlag(command, flags, "min-duration", 10.0,
                &opts->params.duration_threshold) ||
      !ReadFlag(command, flags, "threads", 1, &threads)) {
    return false;
  }
  if (threads < 1) {
    std::fprintf(stderr, "%s: --threads must be >= 1\n", command);
    return false;
  }
  opts->params.cluster.threads = threads;

  std::string algo_name = flags.GetString("algo", "bu");
  if (algo_name == "ci") {
    opts->algorithm = Algorithm::kClusteringIntersection;
  } else if (algo_name == "sc") {
    opts->algorithm = Algorithm::kSmartClosed;
  } else if (algo_name == "bu") {
    opts->algorithm = Algorithm::kBuddy;
  } else {
    std::fprintf(stderr, "%s: unknown --algo %s\n", command,
                 algo_name.c_str());
    return false;
  }

  int window_objects = 100;
  double window_seconds = 60.0;
  if (!ReadFlag(command, flags, "window-objects", 100, &window_objects) ||
      !ReadFlag(command, flags, "window-seconds", 60.0, &window_seconds) ||
      !ReadFlag(command, flags, "inactive", 0, &opts->inactive_fill)) {
    return false;
  }
  if (flags.Has("window-objects")) {
    opts->window.mode = WindowMode::kEqualWidth;
    opts->window.min_objects = static_cast<size_t>(window_objects);
  } else {
    opts->window.mode = WindowMode::kEqualLength;
    opts->window.window_length = window_seconds;
  }
  return true;
}

int Serve(const FlagParser& flags) {
  if (!RejectUnknownFlags(
          "serve", flags,
          {"port", "port-file", "algo", "epsilon", "mu", "min-size",
           "min-duration", "threads", "shards", "window-seconds",
           "window-objects", "inactive", "queue-capacity", "backpressure",
           "lateness", "checkpoint", "checkpoint-every", "read-timeout-ms",
           "write-timeout-ms", "write-window-bytes", "max-connections",
           "admission-max-shed-rate", "admission-max-p99-ms",
           "admission-policy", "slow-snapshot-ms"})) {
    return Usage();
  }
  ServicePipelineOptions popts;
  if (!ParseDiscoveryOptions("serve", flags, &popts)) return Usage();

  int shards = 1;
  if (!ReadFlag("serve", flags, "shards", 1, &shards)) return Usage();
  if (shards < 1 || shards > 64) {
    std::fprintf(stderr, "serve: --shards must be in [1, 64]\n");
    return Usage();
  }
  popts.shards = shards;

  int capacity = 4096;
  if (!ReadFlag("serve", flags, "queue-capacity", 4096, &capacity)) {
    return Usage();
  }
  if (capacity < 1) {
    std::fprintf(stderr, "serve: --queue-capacity must be >= 1\n");
    return Usage();
  }
  popts.queue_capacity = static_cast<size_t>(capacity);
  Status ms = ParseBackpressureMode(
      flags.GetString("backpressure", "block"), &popts.backpressure);
  if (!ms.ok()) {
    std::fprintf(stderr, "serve: %s\n", ms.ToString().c_str());
    return Usage();
  }
  if (!ReadFlag("serve", flags, "lateness", 0.0,
                &popts.allowed_lateness) ||
      !ReadFlag("serve", flags, "checkpoint-every", int64_t{0},
                &popts.checkpoint_every) ||
      !ReadFlag("serve", flags, "slow-snapshot-ms", 0.0,
                &popts.slow_snapshot_ms)) {
    return Usage();
  }
  popts.checkpoint_path = flags.GetString("checkpoint", "");

  ServicePipeline pipeline(popts);
  Status ps = pipeline.Start();
  if (!ps.ok()) {
    std::fprintf(stderr, "serve: %s\n", ps.ToString().c_str());
    return 1;
  }
  if (pipeline.Stats().resumed) {
    std::printf("serve: resumed from %s (%lld snapshots processed)\n",
                popts.checkpoint_path.c_str(),
                static_cast<long long>(
                    pipeline.Stats().discovery.snapshots));
  }

  ServerOptions sopts;
  int serve_port = 0;
  int64_t write_window = static_cast<int64_t>(sopts.write_backpressure_bytes);
  if (!ReadFlag("serve", flags, "port", 0, &serve_port) ||
      !ReadFlag("serve", flags, "read-timeout-ms", 60000,
                &sopts.read_timeout_ms) ||
      !ReadFlag("serve", flags, "write-timeout-ms", sopts.write_timeout_ms,
                &sopts.write_timeout_ms) ||
      !ReadFlag("serve", flags, "write-window-bytes", write_window,
                &write_window) ||
      !ReadFlag("serve", flags, "max-connections", 0,
                &sopts.max_connections) ||
      !ReadFlag("serve", flags, "admission-max-shed-rate", 0.0,
                &sopts.admission.max_shed_rate) ||
      !ReadFlag("serve", flags, "admission-max-p99-ms", 0.0,
                &sopts.admission.max_p99_ms)) {
    return Usage();
  }
  if (serve_port < 0 || serve_port > 65535) {
    std::fprintf(stderr, "serve: --port must be in [0, 65535]\n");
    return Usage();
  }
  if (write_window < 4096) {
    std::fprintf(stderr, "serve: --write-window-bytes must be >= 4096\n");
    return Usage();
  }
  sopts.write_backpressure_bytes = static_cast<size_t>(write_window);
  Status as = ParseAdmissionPolicy(
      flags.GetString("admission-policy", "reject"),
      &sopts.admission.policy);
  if (!as.ok()) {
    std::fprintf(stderr, "serve: %s\n", as.ToString().c_str());
    return Usage();
  }
  sopts.port = static_cast<uint16_t>(serve_port);
  CompanionServer server(&pipeline, sopts);
  Status ss = server.Start();
  if (!ss.ok()) {
    std::fprintf(stderr, "serve: %s\n", ss.ToString().c_str());
    return 1;
  }
  std::printf(
      "serve: listening on 127.0.0.1:%u (algo %s, backpressure %s, "
      "queue %d, shards %d)\n",
      server.port(), AlgorithmName(popts.algorithm),
      BackpressureModeName(popts.backpressure), capacity,
      pipeline.Stats().shards);
  std::fflush(stdout);
  std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    // Written after listen succeeds: a script can poll for this file and
    // then connect, whatever port the kernel picked.
    std::ofstream out(port_file);
    out << server.port() << "\n";
    out.flush();  // the error check below must see write failures, too
    if (!out) {
      std::fprintf(stderr, "serve: cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  InstallShutdownSignalHandlers();
  Status run = RunServiceUntilShutdown(&server, &pipeline);
  if (ShutdownSignal() != 0) {
    std::printf("serve: caught signal %d, shut down gracefully\n",
                ShutdownSignal());
  }
  ServiceStats stats = pipeline.Stats();
  ServerCounters net = server.Counters();
  std::printf(
      "serve: processed %lld records into %lld snapshots; %lld distinct "
      "companions; %lld checkpoints; %lld sessions (%lld protocol "
      "errors)\n",
      static_cast<long long>(stats.records_ingested),
      static_cast<long long>(stats.discovery.snapshots),
      static_cast<long long>(stats.companions_distinct),
      static_cast<long long>(stats.checkpoints_written),
      static_cast<long long>(net.sessions_opened),
      static_cast<long long>(net.parse_errors));
  if (!run.ok()) {
    std::fprintf(stderr, "serve: %s\n", run.ToString().c_str());
    return 1;
  }
  return 0;
}

/// Client-side line transport for feed: framing over a StreamSocket with
/// a generous response-line cap (companion rows can be long).
class LineClient {
 public:
  Status Connect(uint16_t port) {
    return StreamSocket::Connect(port, /*timeout_ms=*/5000, &sock_);
  }
  Status Send(const std::string& data) {
    return sock_.WriteAll(data, /*timeout_ms=*/30000);
  }
  Status ReadLine(std::string* line) {
    for (;;) {
      LineFramer::Result r = framer_.Next(line);
      if (r == LineFramer::Result::kLine) return Status::OK();
      if (r == LineFramer::Result::kOversize) {
        return Status::Corruption("oversized response line");
      }
      char buf[4096];
      size_t n = 0;
      TCOMP_RETURN_IF_ERROR(
          sock_.Read(buf, sizeof(buf), /*timeout_ms=*/30000, &n));
      if (n == 0) return Status::IoError("server closed the connection");
      framer_.Feed(buf, n);
    }
  }

 private:
  StreamSocket sock_;
  LineFramer framer_{1 << 20};
};

/// Client-side frame transport for feed --binary.
class FrameClient {
 public:
  Status Connect(uint16_t port) {
    return StreamSocket::Connect(port, /*timeout_ms=*/5000, &sock_);
  }
  /// Sends one request frame and reads the matching response frame.
  Status Transact(const std::string& frame, BinaryResponse* response) {
    TCOMP_RETURN_IF_ERROR(sock_.WriteAll(frame, /*timeout_ms=*/30000));
    for (;;) {
      std::string error;
      BinaryResponseReader::Result r = reader_.Next(response, &error);
      if (r == BinaryResponseReader::Result::kFrame) return Status::OK();
      if (r == BinaryResponseReader::Result::kBad) {
        return Status::Corruption(error);
      }
      char buf[4096];
      size_t n = 0;
      TCOMP_RETURN_IF_ERROR(
          sock_.Read(buf, sizeof(buf), /*timeout_ms=*/30000, &n));
      if (n == 0) return Status::IoError("server closed the connection");
      reader_.Feed(buf, n);
    }
  }

 private:
  StreamSocket sock_;
  BinaryResponseReader reader_;
};

/// Reads the low 8 bytes of a payload as a uint64 LE (the refused-record
/// count of an OK INGEST_BATCH response).
uint64_t PayloadU64(const std::string& payload) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < payload.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(payload[i]))
         << (8 * i);
  }
  return v;
}

/// Writes a query payload body the way the text path does: to --out when
/// given, stdout otherwise.
int EmitQueryPayload(const FlagParser& flags, const std::string& query,
                     const std::string& payload, bool quiet) {
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fputs(payload.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path);
  out << payload;
  out.flush();  // surface buffered write failures before reporting OK
  if (!out) {
    std::fprintf(stderr, "feed: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("feed: %s written to %s\n", query.c_str(),
                out_path.c_str());
  }
  return 0;
}

/// feed --binary: the same workflow as the text path (ingest, flush,
/// query, shutdown) over length-prefixed frames. Records travel as raw
/// IEEE-754 bits in batches, and a query's payload bytes are identical
/// to the text protocol's, so --out files are byte-comparable.
int FeedBinary(const FlagParser& flags,
               const std::vector<TrajectoryRecord>& records, uint16_t port,
               double rate, int batch, bool want_flush,
               const std::string& query, bool want_shutdown, bool quiet) {
  Request::QueryKind kind = Request::QueryKind::kCompanions;
  if (!query.empty()) {
    if (query == "companions") {
      kind = Request::QueryKind::kCompanions;
    } else if (query == "stats") {
      kind = Request::QueryKind::kStats;
    } else if (query == "buddies") {
      kind = Request::QueryKind::kBuddies;
    } else if (query == "metrics") {
      kind = Request::QueryKind::kMetrics;
    } else {
      std::fprintf(stderr, "feed: unknown --query %s\n", query.c_str());
      return Usage();
    }
  }

  FrameClient client;
  Status cs = client.Connect(port);
  if (!cs.ok()) {
    std::fprintf(stderr, "feed: %s\n", cs.ToString().c_str());
    return 1;
  }

  int64_t sent = 0;
  int64_t refused = 0;
  for (size_t i = 0; i < records.size();
       i += static_cast<size_t>(batch)) {
    size_t n = std::min(static_cast<size_t>(batch), records.size() - i);
    BinaryResponse response;
    Status ts = client.Transact(EncodeIngestBatch(&records[i], n),
                                &response);
    if (!ts.ok()) {
      std::fprintf(stderr, "feed: %s\n", ts.ToString().c_str());
      return 1;
    }
    if (response.type != static_cast<uint8_t>(BinaryResponseType::kOk)) {
      std::fprintf(stderr, "feed: ingest batch failed: %s\n",
                   response.payload.c_str());
      return 1;
    }
    sent += static_cast<int64_t>(n);
    refused += static_cast<int64_t>(PayloadU64(response.payload));
    if (rate > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(static_cast<double>(n) / rate));
    }
  }

  if (want_flush || !query.empty()) {
    BinaryResponse response;
    Status fs = client.Transact(
        EncodeBinaryRequest(BinaryRequestType::kFlush, 0, ""), &response);
    if (!fs.ok() ||
        response.type != static_cast<uint8_t>(BinaryResponseType::kOk)) {
      std::fprintf(stderr, "feed: flush failed: %s\n",
                   fs.ok() ? response.payload.c_str()
                           : fs.ToString().c_str());
      return 1;
    }
  }

  if (!query.empty()) {
    BinaryResponse response;
    Status qs = client.Transact(
        EncodeBinaryRequest(BinaryRequestType::kQuery,
                            static_cast<uint8_t>(kind), ""),
        &response);
    if (!qs.ok() ||
        response.type != static_cast<uint8_t>(BinaryResponseType::kOk)) {
      std::fprintf(stderr, "feed: query failed: %s\n",
                   qs.ok() ? response.payload.c_str()
                           : qs.ToString().c_str());
      return 1;
    }
    int rc = EmitQueryPayload(flags, query, response.payload, quiet);
    if (rc != 0) return rc;
  }

  if (want_shutdown) {
    BinaryResponse response;
    Status ds = client.Transact(
        EncodeBinaryRequest(BinaryRequestType::kShutdown, 0, ""),
        &response);
    if (!ds.ok() ||
        response.type != static_cast<uint8_t>(BinaryResponseType::kOk)) {
      std::fprintf(stderr, "feed: shutdown failed: %s\n",
                   ds.ok() ? response.payload.c_str()
                           : ds.ToString().c_str());
      return 1;
    }
  }

  if (!quiet && !records.empty()) {
    std::printf("feed: sent %lld records in %lld-record batches "
                "(%lld refused)\n",
                static_cast<long long>(sent),
                static_cast<long long>(batch),
                static_cast<long long>(refused));
  }
  return 0;
}

int Feed(const FlagParser& flags) {
  if (!RejectUnknownFlags("feed", flags,
                          {"csv", "port", "rate", "flush", "query", "out",
                           "shutdown", "quiet", "binary", "batch"})) {
    return Usage();
  }
  std::string csv = flags.GetString("csv", "");
  std::string query = flags.GetString("query", "");
  bool want_flush = false;
  bool want_shutdown = false;
  bool quiet = false;
  bool use_binary = false;
  int port = 0;
  int batch = 256;
  double rate = 0.0;
  if (!ReadFlag("feed", flags, "flush", false, &want_flush) ||
      !ReadFlag("feed", flags, "shutdown", false, &want_shutdown) ||
      !ReadFlag("feed", flags, "quiet", false, &quiet) ||
      !ReadFlag("feed", flags, "binary", false, &use_binary) ||
      !ReadFlag("feed", flags, "port", 0, &port) ||
      !ReadFlag("feed", flags, "batch", 256, &batch) ||
      !ReadFlag("feed", flags, "rate", 0.0, &rate)) {
    return Usage();
  }
  if (batch < 1 || static_cast<size_t>(batch) * kBinaryRecordBytes >
                       kMaxBinaryPayloadBytes) {
    std::fprintf(stderr, "feed: --batch out of range\n");
    return Usage();
  }
  if (csv.empty() && query.empty() && !want_flush && !want_shutdown) {
    std::fprintf(stderr,
                 "feed: nothing to do (need --csv, --query, --flush, "
                 "or --shutdown)\n");
    return Usage();
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "feed: --port is required\n");
    return Usage();
  }

  std::vector<TrajectoryRecord> records;
  if (!csv.empty()) {
    Status rs = ReadRecordCsv(csv, &records);
    if (!rs.ok()) {
      std::fprintf(stderr, "feed: %s\n", rs.ToString().c_str());
      return 1;
    }
  }

  if (use_binary) {
    return FeedBinary(flags, records, static_cast<uint16_t>(port), rate,
                      batch, want_flush, query, want_shutdown, quiet);
  }

  LineClient client;
  Status cs = client.Connect(static_cast<uint16_t>(port));
  if (!cs.ok()) {
    std::fprintf(stderr, "feed: %s\n", cs.ToString().c_str());
    return 1;
  }

  auto transact = [&](const std::string& request,
                      std::string* reply) -> Status {
    TCOMP_RETURN_IF_ERROR(client.Send(request));
    return client.ReadLine(reply);
  };

  int64_t sent = 0;
  int64_t errors = 0;
  char line[256];
  for (const TrajectoryRecord& r : records) {
    // %.17g round-trips doubles exactly, so the daemon sees bit-identical
    // values to the batch path reading the same CSV.
    std::snprintf(line, sizeof(line), "INGEST %u %.17g %.17g %.17g\n",
                  r.object, r.timestamp, r.pos.x, r.pos.y);
    std::string reply;
    Status ts = transact(line, &reply);
    if (!ts.ok()) {
      std::fprintf(stderr, "feed: %s\n", ts.ToString().c_str());
      return 1;
    }
    ++sent;
    if (reply.rfind("OK", 0) != 0) {
      ++errors;
      if (!quiet) std::fprintf(stderr, "feed: %s\n", reply.c_str());
    }
    if (rate > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(1.0 / rate));
    }
  }

  if (want_flush || !query.empty()) {
    std::string reply;
    Status fs = transact("FLUSH\n", &reply);
    if (!fs.ok() || reply.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "feed: flush failed: %s\n",
                   fs.ok() ? reply.c_str() : fs.ToString().c_str());
      return 1;
    }
  }

  if (!query.empty()) {
    std::string reply;
    Status qs = transact("QUERY " + query + "\n", &reply);
    if (!qs.ok()) {
      std::fprintf(stderr, "feed: %s\n", qs.ToString().c_str());
      return 1;
    }
    if (reply.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "feed: %s\n", reply.c_str());
      return 1;
    }
    std::ostringstream payload;
    for (;;) {
      std::string body;
      Status bs = client.ReadLine(&body);
      if (!bs.ok()) {
        std::fprintf(stderr, "feed: %s\n", bs.ToString().c_str());
        return 1;
      }
      if (body == ".") break;
      payload << body << "\n";
    }
    std::string out_path = flags.GetString("out", "");
    if (out_path.empty()) {
      std::fputs(payload.str().c_str(), stdout);
    } else {
      std::ofstream out(out_path);
      out << payload.str();
      out.flush();  // surface buffered write failures before reporting OK
      if (!out) {
        std::fprintf(stderr, "feed: cannot write %s\n", out_path.c_str());
        return 1;
      }
      if (!quiet) {
        std::printf("feed: %s written to %s\n", query.c_str(),
                    out_path.c_str());
      }
    }
  }

  if (want_shutdown) {
    std::string reply;
    Status ds = transact("SHUTDOWN\n", &reply);
    if (!ds.ok() || reply.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "feed: shutdown failed: %s\n",
                   ds.ok() ? reply.c_str() : ds.ToString().c_str());
      return 1;
    }
  }

  if (!quiet && !records.empty()) {
    std::printf("feed: sent %lld records (%lld rejected)\n",
                static_cast<long long>(sent),
                static_cast<long long>(errors));
  }
  return 0;
}

int Blast(const FlagParser& flags) {
  if (!RejectUnknownFlags(
          "blast", flags,
          {"clients", "curve", "seconds", "protocol", "batch", "objects",
           "snapshots", "seed", "no-verify", "json", "algo", "epsilon",
           "mu", "min-size", "min-duration", "threads", "queue-capacity",
           "window-seconds", "window-objects", "inactive"})) {
    return Usage();
  }
  BlastOptions bopts;
  if (!ParseDiscoveryOptions("blast", flags, &bopts.pipeline)) {
    return Usage();
  }
  if (!flags.Has("window-seconds") && !flags.Has("window-objects")) {
    // The blast scenario emits one snapshot per stream second.
    bopts.pipeline.window.window_length = 1.0;
  }

  bool no_verify = false;
  int64_t seed_raw = 0;
  int capacity = 1024;
  if (!ReadFlag("blast", flags, "clients", 4, &bopts.clients) ||
      !ReadFlag("blast", flags, "seconds", 2.0,
                &bopts.seconds_per_point) ||
      !ReadFlag("blast", flags, "batch", 256, &bopts.batch_records) ||
      !ReadFlag("blast", flags, "objects", 100, &bopts.objects) ||
      !ReadFlag("blast", flags, "snapshots", 30, &bopts.snapshots) ||
      !ReadFlag("blast", flags, "seed", int64_t{405}, &seed_raw) ||
      !ReadFlag("blast", flags, "queue-capacity", 1024, &capacity) ||
      !ReadFlag("blast", flags, "no-verify", false, &no_verify)) {
    return Usage();
  }
  if (bopts.clients < 1 || bopts.clients > 256) {
    std::fprintf(stderr, "blast: --clients must be in [1, 256]\n");
    return Usage();
  }
  if (capacity < 1) {
    std::fprintf(stderr, "blast: --queue-capacity must be >= 1\n");
    return Usage();
  }
  bopts.seed = static_cast<uint64_t>(seed_raw);
  bopts.pipeline.queue_capacity = static_cast<size_t>(capacity);
  bopts.verify_products = !no_verify;

  std::string protocol = flags.GetString("protocol", "both");
  bopts.run_text = (protocol == "text" || protocol == "both");
  bopts.run_binary = (protocol == "binary" || protocol == "both");
  if (!bopts.run_text && !bopts.run_binary) {
    std::fprintf(stderr, "blast: --protocol must be text|binary|both\n");
    return Usage();
  }

  std::string curve = flags.GetString("curve", "");
  if (!curve.empty()) {
    std::istringstream in(curve);
    std::string field;
    while (std::getline(in, field, ',')) {
      char* end = nullptr;
      double rate = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0' || !(rate > 0.0)) {
        std::fprintf(stderr, "blast: bad --curve entry '%s'\n",
                     field.c_str());
        return Usage();
      }
      bopts.offered_rates.push_back(rate);
    }
  }

  BlastReport report;
  Status s = RunBlast(bopts, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "blast: %s\n", s.ToString().c_str());
    return 1;
  }

  if (report.verify.ran) {
    std::printf("blast: verify %lld records -> %llu companions; "
                "text %s, binary %s\n",
                static_cast<long long>(report.verify.records),
                static_cast<unsigned long long>(report.verify.companions),
                report.verify.text_identical ? "identical" : "DIFFERS",
                report.verify.binary_identical ? "identical" : "DIFFERS");
  }
  for (const BlastCurve& curve_result : report.curves) {
    for (const BlastPoint& p : curve_result.points) {
      std::printf(
          "blast: %-6s offered %9.0f rec/s -> achieved %9.0f rec/s, "
          "shed %5.1f%%, ack p50/p95/p99 %.3f/%.3f/%.3f ms\n",
          curve_result.protocol.c_str(), p.offered_rps, p.achieved_rps,
          100.0 * p.shed_fraction, p.p50_ms, p.p95_ms, p.p99_ms);
    }
  }

  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << BlastReportJson(report);
    out.flush();  // the error check must see buffered write failures
    if (!out) {
      std::fprintf(stderr, "blast: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("blast: report written to %s\n", json_path.c_str());
  }

  bool verify_failed =
      report.verify.ran && !(report.verify.text_identical &&
                             report.verify.binary_identical);
  return verify_failed ? 1 : 0;
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagParser flags;
  Status s = flags.Parse(argc - 1, argv + 1);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return Usage();
  }
  if (command == "generate") return Generate(flags);
  if (command == "discover") return Discover(flags);
  if (command == "suggest") return Suggest(flags);
  if (command == "serve") return Serve(flags);
  if (command == "feed") return Feed(flags);
  if (command == "blast") return Blast(flags);
  if (command == "help" || command == "--help") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace tcomp

int main(int argc, char** argv) { return tcomp::Main(argc, argv); }
