// tcomp — command-line interface to the traveling-companion library.
//
// Subcommands:
//   generate  write a synthetic dataset as record CSV (+ ground truth)
//   discover  run companion discovery over a record CSV
//   help      usage
//
// Examples:
//   tcomp generate --dataset d2 --snapshots 60 --out d2.csv --truth d2.truth
//   tcomp discover --csv d2.csv --algo bu --epsilon 24 --mu 5
//       --min-size 10 --min-duration 10 --window-seconds 60
//       --truth d2.truth --timeline
//   tcomp discover --csv d2.csv --algo bu ... --save-state s.ckpt
//   tcomp discover --csv d2_rest.csv --algo bu ... --load-state s.ckpt

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/checkpoint.h"
#include "core/discoverer.h"
#include "core/timeline.h"
#include "data/synthetic_gen.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "eval/tuning.h"
#include "stream/inactive_period.h"
#include "stream/sliding_window.h"
#include "util/flags.h"

namespace tcomp {
namespace {

int Usage() {
  std::printf(
      "tcomp — traveling companion discovery (ICDE 2012 reproduction)\n"
      "\n"
      "  tcomp generate --dataset d1|d2|d3|d4 [--snapshots N]\n"
      "      --out records.csv [--truth truth.txt] [--seconds-per-snapshot S]\n"
      "  tcomp discover --csv records.csv [--algo ci|sc|bu]\n"
      "      --epsilon E --mu M --min-size S --min-duration T\n"
      "      [--threads N]  (parallel snapshot clustering; results are\n"
      "                      identical at every N, 1 = serial, default 1)\n"
      "      [--window-seconds W | --window-objects N]\n"
      "      [--inactive K] [--truth truth.txt] [--timeline]\n"
      "      [--out-json FILE] [--out-csv FILE]\n"
      "      [--save-state FILE] [--load-state FILE] [--quiet]\n"
      "  tcomp suggest --csv records.csv [--k K] [--window-seconds W]\n");
  return 2;
}

Status WriteTruth(const std::string& path,
                  const std::vector<ObjectSet>& truth) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (const ObjectSet& group : truth) {
    for (size_t i = 0; i < group.size(); ++i) {
      out << (i ? " " : "") << group[i];
    }
    out << "\n";
  }
  return Status::OK();
}

Status ReadTruth(const std::string& path, std::vector<ObjectSet>* truth) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ObjectSet group;
    std::istringstream row(line);
    ObjectId id;
    while (row >> id) group.push_back(id);
    if (!group.empty()) {
      std::sort(group.begin(), group.end());
      truth->push_back(std::move(group));
    }
  }
  return Status::OK();
}

int Generate(const FlagParser& flags) {
  std::string which = flags.GetString("dataset", "d3");
  std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return Usage();
  }
  int snapshots = flags.GetInt("snapshots", 0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed", 0));

  Dataset dataset;
  if (which == "d1") {
    dataset = MakeTaxiD1(snapshots > 0 ? snapshots : kD1Snapshots,
                         seed ? seed : 11);
  } else if (which == "d2") {
    dataset = MakeMilitaryD2(snapshots > 0 ? snapshots : kD2Snapshots,
                             seed ? seed : 7);
  } else if (which == "d3") {
    dataset = MakeSyntheticD3(snapshots > 0 ? snapshots : 240,
                              seed ? seed : 42);
  } else if (which == "d4") {
    dataset = MakeSyntheticD4(snapshots > 0 ? snapshots : 60,
                              seed ? seed : 43);
  } else {
    std::fprintf(stderr, "generate: unknown --dataset %s\n", which.c_str());
    return Usage();
  }

  double spacing = flags.GetDouble("seconds-per-snapshot", 60.0);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(dataset.stream, spacing);
  Status s = WriteRecordCsv(out_path, records);
  if (!s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records (%zu snapshots, %zu objects) to %s\n",
              records.size(), dataset.stream.size(),
              dataset.stream.empty() ? 0 : dataset.stream[0].size(),
              out_path.c_str());

  std::string truth_path = flags.GetString("truth", "");
  if (!truth_path.empty()) {
    if (dataset.ground_truth.empty()) {
      std::fprintf(stderr,
                   "generate: dataset %s has no ground truth; skipping\n",
                   which.c_str());
    } else {
      Status ts = WriteTruth(truth_path, dataset.ground_truth);
      if (!ts.ok()) {
        std::fprintf(stderr, "generate: %s\n", ts.ToString().c_str());
        return 1;
      }
      std::printf("wrote %zu ground-truth groups to %s\n",
                  dataset.ground_truth.size(), truth_path.c_str());
    }
  }
  std::printf("suggested thresholds: --epsilon %.1f --mu %d\n",
              dataset.default_params.cluster.epsilon,
              dataset.default_params.cluster.mu);
  return 0;
}

int Discover(const FlagParser& flags) {
  std::string csv = flags.GetString("csv", "");
  if (csv.empty()) {
    std::fprintf(stderr, "discover: --csv is required\n");
    return Usage();
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(csv, &records);
  if (!s.ok()) {
    std::fprintf(stderr, "discover: %s\n", s.ToString().c_str());
    return 1;
  }

  DiscoveryParams params;
  params.cluster.epsilon = flags.GetDouble("epsilon", 20.0);
  params.cluster.mu = flags.GetInt("mu", 4);
  params.size_threshold = flags.GetInt("min-size", 10);
  params.duration_threshold = flags.GetDouble("min-duration", 10.0);
  int threads = flags.GetInt("threads", 1);
  if (threads < 1) {
    std::fprintf(stderr, "discover: --threads must be >= 1\n");
    return Usage();
  }
  params.cluster.threads = threads;

  std::string algo_name = flags.GetString("algo", "bu");
  Algorithm algorithm;
  if (algo_name == "ci") {
    algorithm = Algorithm::kClusteringIntersection;
  } else if (algo_name == "sc") {
    algorithm = Algorithm::kSmartClosed;
  } else if (algo_name == "bu") {
    algorithm = Algorithm::kBuddy;
  } else {
    std::fprintf(stderr, "discover: unknown --algo %s\n",
                 algo_name.c_str());
    return Usage();
  }
  auto discoverer = MakeDiscoverer(algorithm, params);

  std::string load_state = flags.GetString("load-state", "");
  if (!load_state.empty()) {
    Status ls = LoadDiscovererFromFile(discoverer.get(), load_state);
    if (!ls.ok()) {
      std::fprintf(stderr, "discover: %s\n", ls.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s (%lld snapshots processed so far)\n",
                load_state.c_str(),
                static_cast<long long>(discoverer->stats().snapshots));
  }

  CompanionTimeline timeline;
  bool want_timeline = flags.GetBool("timeline", false);
  if (want_timeline) timeline.Track(discoverer.get());

  SlidingWindowOptions wopts;
  if (flags.Has("window-objects")) {
    wopts.mode = WindowMode::kEqualWidth;
    wopts.min_objects =
        static_cast<size_t>(flags.GetInt("window-objects", 100));
  } else {
    wopts.mode = WindowMode::kEqualLength;
    wopts.window_length = flags.GetDouble("window-seconds", 60.0);
  }
  SlidingWindowSnapshotter window(wopts);
  InactivePeriodFiller filler(flags.GetInt("inactive", 0));

  bool quiet = flags.GetBool("quiet", false);
  int64_t snapshots = 0;
  std::vector<Snapshot> ready;
  auto process = [&](const Snapshot& snap) {
    std::vector<Companion> newly;
    discoverer->ProcessSnapshot(filler.Fill(snap), &newly);
    ++snapshots;
    if (!quiet) {
      for (const Companion& c : newly) {
        std::printf("[snapshot %lld] companion of %zu objects, together "
                    "%.1f units:",
                    static_cast<long long>(snapshots), c.objects.size(),
                    c.duration);
        for (size_t i = 0; i < std::min<size_t>(8, c.objects.size());
             ++i) {
          std::printf(" %u", c.objects[i]);
        }
        if (c.objects.size() > 8) std::printf(" ...");
        std::printf("\n");
      }
    }
  };
  for (const TrajectoryRecord& r : records) {
    Status ps = window.Push(r, &ready);
    if (!ps.ok()) {
      std::fprintf(stderr, "discover: %s\n", ps.ToString().c_str());
      return 1;
    }
    for (const Snapshot& snap : ready) process(snap);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& snap : ready) process(snap);

  const DiscoveryStats& stats = discoverer->stats();
  std::printf("\n%s over %lld snapshots: %zu distinct companions, "
              "%lld intersections, peak candidate size %lld\n",
              discoverer->name().c_str(),
              static_cast<long long>(stats.snapshots),
              discoverer->log().size(),
              static_cast<long long>(stats.intersections),
              static_cast<long long>(stats.candidate_objects_peak));

  std::string truth_path = flags.GetString("truth", "");
  if (!truth_path.empty()) {
    std::vector<ObjectSet> truth;
    Status ts = ReadTruth(truth_path, &truth);
    if (!ts.ok()) {
      std::fprintf(stderr, "discover: %s\n", ts.ToString().c_str());
      return 1;
    }
    std::vector<ObjectSet> retrieved;
    for (const Companion& c : discoverer->log().companions()) {
      retrieved.push_back(c.objects);
    }
    EffectivenessResult strict = ScoreCompanions(retrieved, truth);
    EffectivenessResult coverage =
        ScoreCompanionsCoverage(retrieved, truth, 0.35);
    std::printf("vs ground truth (%zu groups): one-to-one precision "
                "%.1f%% recall %.1f%%; coverage precision %.1f%%\n",
                truth.size(), 100.0 * strict.precision,
                100.0 * strict.recall, 100.0 * coverage.precision);
  }

  if (want_timeline) {
    std::printf("\ncompanion timeline (%zu distinct sets):\n",
                timeline.distinct_sets());
    int shown = 0;
    for (const CompanionEpisode& e : timeline.Episodes()) {
      if (shown++ >= 15) {
        std::printf("  ...\n");
        break;
      }
      std::printf("  %zu objects, snapshots %lld..%lld (%lld long)\n",
                  e.objects.size(), static_cast<long long>(e.begin),
                  static_cast<long long>(e.end),
                  static_cast<long long>(e.length()));
    }
  }

  std::string out_json = flags.GetString("out-json", "");
  if (!out_json.empty()) {
    Status os = WriteCompanionsJsonFile(discoverer->log().companions(),
                                        out_json);
    if (!os.ok()) {
      std::fprintf(stderr, "discover: %s\n", os.ToString().c_str());
      return 1;
    }
    std::printf("companions written to %s\n", out_json.c_str());
  }
  std::string out_csv = flags.GetString("out-csv", "");
  if (!out_csv.empty()) {
    Status os = WriteCompanionsCsvFile(discoverer->log().companions(),
                                       out_csv);
    if (!os.ok()) {
      std::fprintf(stderr, "discover: %s\n", os.ToString().c_str());
      return 1;
    }
    std::printf("companions written to %s\n", out_csv.c_str());
  }

  std::string save_state = flags.GetString("save-state", "");
  if (!save_state.empty()) {
    Status ss = SaveDiscovererToFile(*discoverer, save_state);
    if (!ss.ok()) {
      std::fprintf(stderr, "discover: %s\n", ss.ToString().c_str());
      return 1;
    }
    std::printf("state saved to %s\n", save_state.c_str());
  }
  return 0;
}

int Suggest(const FlagParser& flags) {
  std::string csv = flags.GetString("csv", "");
  if (csv.empty()) {
    std::fprintf(stderr, "suggest: --csv is required\n");
    return Usage();
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(csv, &records);
  if (!s.ok()) {
    std::fprintf(stderr, "suggest: %s\n", s.ToString().c_str());
    return 1;
  }
  SlidingWindowOptions wopts;
  wopts.window_length = flags.GetDouble("window-seconds", 60.0);
  SlidingWindowSnapshotter window(wopts);
  SnapshotStream stream;
  for (const TrajectoryRecord& r : records) {
    if (!window.Push(r, &stream).ok()) return 1;
  }
  window.Flush(&stream);

  int k = flags.GetInt("k", 4);
  TuningSuggestion suggestion = SuggestClusterParams(stream, k);
  std::printf("suggested thresholds from %zu snapshots: --epsilon %.2f "
              "--mu %d  (k-distance knee; ~%.1f%% of objects beyond it)\n",
              stream.size(), suggestion.params.epsilon,
              suggestion.params.mu, 100.0 * suggestion.noise_fraction);
  return 0;
}

int Main(int argc, const char* const* argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagParser flags;
  Status s = flags.Parse(argc - 1, argv + 1);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return Usage();
  }
  if (command == "generate") return Generate(flags);
  if (command == "discover") return Discover(flags);
  if (command == "suggest") return Suggest(flags);
  if (command == "help" || command == "--help") {
    Usage();
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace tcomp

int main(int argc, char** argv) { return tcomp::Main(argc, argv); }
