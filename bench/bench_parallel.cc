// Thread-scaling of the snapshot-clustering hot path (util/thread_pool.h):
// the same workload at 1/2/4/8 threads, with the 1-thread run as both the
// baseline and the correctness oracle — every multi-threaded run must
// reproduce it bit for bit (labels, clusters, companion log, and the
// distance_ops / intersections counters) or the bench aborts. Speedup is
// the payoff; determinism is the contract.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/buddy_discovery.h"
#include "core/dbscan.h"
#include "util/timer.h"

namespace tcomp {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

void CheckSame(bool ok, const char* what, int threads) {
  if (!ok) {
    std::cerr << "FATAL: " << what << " differs between threads=1 and "
              << "threads=" << threads << " — determinism contract broken\n";
    std::exit(1);
  }
}

bool SameClustering(const Clustering& a, const Clustering& b) {
  return a.labels == b.labels && a.core == b.core && a.clusters == b.clusters;
}

std::string Speedup(double base_seconds, double seconds) {
  return seconds > 0.0 ? FormatDouble(base_seconds / seconds, 2) + "x" : "-";
}

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("(threading)", "snapshot-clustering scaling with --threads",
         config);

  // One large stream: 5,000 objects is the paper's D3 scale, big enough
  // that the O(n²) neighbor stage dominates.
  Dataset d = MakeSyntheticDataset("bench", /*num_objects=*/5000,
                                   /*num_snapshots=*/12, /*seed=*/42);
  DiscoveryParams params = d.default_params;

  // --- Clustering stage in isolation (Dbscan and DbscanGrid). -----------
  TablePrinter cluster_table(
      {"threads", "dbscan-n2", "speedup", "grid", "speedup"});
  const Snapshot& big = d.stream[0];
  Clustering ref_plain, ref_grid;
  int64_t ref_plain_ops = 0, ref_grid_ops = 0;
  double base_plain = 0.0, base_grid = 0.0;
  for (int threads : kThreadCounts) {
    DbscanParams cp = params.cluster;
    cp.threads = threads;

    Timer plain;
    int64_t plain_ops = 0;
    plain.Start();
    Clustering got_plain = Dbscan(big, cp, &plain_ops);
    plain.Stop();

    Timer grid;
    int64_t grid_ops = 0;
    grid.Start();
    Clustering got_grid;
    for (const Snapshot& s : d.stream) {
      got_grid = DbscanGrid(s, cp, &grid_ops);
    }
    grid.Stop();

    if (threads == 1) {
      ref_plain = got_plain;
      ref_grid = got_grid;
      ref_plain_ops = plain_ops;
      ref_grid_ops = grid_ops;
      base_plain = plain.Seconds();
      base_grid = grid.Seconds();
    } else {
      CheckSame(SameClustering(got_plain, ref_plain), "Dbscan clustering",
                threads);
      CheckSame(plain_ops == ref_plain_ops, "Dbscan distance_ops", threads);
      CheckSame(SameClustering(got_grid, ref_grid), "DbscanGrid clustering",
                threads);
      CheckSame(grid_ops == ref_grid_ops, "DbscanGrid distance_ops",
                threads);
    }
    cluster_table.AddRow({std::to_string(threads),
                          FormatDouble(plain.Milliseconds(), 1) + "ms",
                          Speedup(base_plain, plain.Seconds()),
                          FormatDouble(grid.Milliseconds(), 1) + "ms",
                          Speedup(base_grid, grid.Seconds())});
  }
  std::cout << "\nClustering one 5,000-object snapshot (dbscan-n2) / the "
               "12-snapshot stream (grid)\n";
  cluster_table.Print();

  // --- Full BU discovery over the stream. -------------------------------
  TablePrinter bu_table({"threads", "total", "speedup", "maintain",
                         "cluster", "intersect"});
  std::vector<Companion> ref_log;
  int64_t ref_intersections = 0;
  double base_bu = 0.0;
  for (int threads : kThreadCounts) {
    DiscoveryParams p = params;
    p.cluster.threads = threads;
    BuddyDiscoverer bu(p);
    Timer total;
    total.Start();
    for (const Snapshot& s : d.stream) bu.ProcessSnapshot(s, nullptr);
    total.Stop();

    const std::vector<Companion>& log = bu.log().companions();
    if (threads == 1) {
      ref_log = log;
      ref_intersections = bu.stats().intersections;
      base_bu = total.Seconds();
    } else {
      bool same = log.size() == ref_log.size();
      for (size_t i = 0; same && i < log.size(); ++i) {
        same = log[i].objects == ref_log[i].objects &&
               log[i].duration == ref_log[i].duration &&
               log[i].snapshot_index == ref_log[i].snapshot_index;
      }
      CheckSame(same, "BU companion log", threads);
      CheckSame(bu.stats().intersections == ref_intersections,
                "BU intersections", threads);
    }
    const DiscoveryStats& st = bu.stats();
    bu_table.AddRow({std::to_string(threads),
                     FormatDouble(total.Seconds(), 3) + "s",
                     Speedup(base_bu, total.Seconds()),
                     FormatDouble(st.maintain_seconds, 3) + "s",
                     FormatDouble(st.cluster_seconds, 3) + "s",
                     FormatDouble(st.intersect_seconds, 3) + "s"});
  }
  std::cout << "\nBU discovery over the 5,000-object stream ("
            << ref_log.size() << " companions at every thread count)\n";
  bu_table.Print();

  std::cout << "\nExpected shape: near-linear dbscan-n2 scaling up to the "
               "core count (the\nneighbor stage is embarrassingly parallel "
               "over strided rows); grid and BU\nscale less — their serial "
               "stitch/merge phases bound the win (Amdahl). On a\n"
               "single-core host every speedup column reads ~1.0x; the "
               "determinism checks\nstill bite.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
