// Reproduces Fig. 21: precision (a) and recall (b) vs. the duration
// threshold δt on the military dataset D2.
//
// Paper result: precision rises with δt while recall stays high (all true
// teams march together the whole time); BU and SC hit 100%/100% once
// δt > 11; the paper's practical advice follows — set a relatively high
// δt to kill false positives and a moderate δs to keep sensitivity.

#include <iostream>

#include "bench/bench_common.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 21", "precision & recall vs duration threshold (D2)",
         config);

  Dataset d2 = MakeMilitaryD2(config.d2_snapshots);
  TablePrinter precision_table({"delta_t", "BU", "SC", "SW", "CI", "TC"});
  TablePrinter recall_table({"delta_t", "BU", "SC", "SW", "CI", "TC"});

  RunResult tc =
      RunTraClusBaseline(TraClusParamsFrom(d2.default_params), d2.stream);
  EffectivenessResult tc_score =
      ScoreCompanions(tc.companions, d2.ground_truth);

  for (int delta_t : {3, 5, 7, 9, 11, 13, 15}) {
    DiscoveryParams params = d2.default_params;
    params.duration_threshold = delta_t;

    RunResult bu =
        RunStreamingAlgorithm(Algorithm::kBuddy, params, d2.stream);
    RunResult sc =
        RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d2.stream);
    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, params, d2.stream);
    RunResult sw = RunSwarmBaseline(SwarmParamsFrom(params), d2.stream);

    EffectivenessResult bu_s =
        ScoreCompanions(bu.companions, d2.ground_truth);
    EffectivenessResult sc_s =
        ScoreCompanions(sc.companions, d2.ground_truth);
    EffectivenessResult ci_s =
        ScoreCompanions(ci.companions, d2.ground_truth);
    EffectivenessResult sw_s =
        ScoreCompanions(sw.companions, d2.ground_truth);

    precision_table.AddRow({std::to_string(delta_t),
                            FormatPercent(bu_s.precision),
                            FormatPercent(sc_s.precision),
                            FormatPercent(sw_s.precision),
                            FormatPercent(ci_s.precision),
                            FormatPercent(tc_score.precision)});
    recall_table.AddRow({std::to_string(delta_t),
                         FormatPercent(bu_s.recall),
                         FormatPercent(sc_s.recall),
                         FormatPercent(sw_s.recall),
                         FormatPercent(ci_s.recall),
                         FormatPercent(tc_score.recall)});
  }

  std::cout << "\nFig. 21(a) — precision vs delta_t\n";
  precision_table.Print();
  std::cout << "\nFig. 21(b) — recall vs delta_t\n";
  recall_table.Print();
  std::cout << "\nExpected shape: precision rises with delta_t, recall "
               "stays ~100%;\nBU/SC reach 100/100 at high delta_t; TC "
               "flat.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
