// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure — quantifies each optimization's contribution separately):
//
//  1. Smart intersection (Lemma 1): CI vs SC intersection counts on the
//     same stream — the paper claims SC saves ~50%.
//  2. Closed candidates (Definition 5): SC peak candidate size vs CI's.
//  3. Lemma-3 pruning inside buddy clustering: fraction of buddy pairs
//     dismissed without touching members (paper: >80%).
//  4. Buddy-token compression: BU stored atoms vs SC stored objects.
//  5. Sorted-vector vs hash-set intersection kernel (implementation
//     choice rationale, DESIGN.md §2.1).

#include <iostream>
#include <unordered_set>

#include "bench/bench_common.h"
#include "core/buddy_discovery.h"
#include "util/random.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace tcomp {
namespace bench {
namespace {

void IntersectionKernelAblation() {
  // Identical random set pairs through both kernels.
  Pcg32 rng(42);
  constexpr int kPairs = 2000;
  constexpr int kSetSize = 64;
  std::vector<std::vector<uint32_t>> lhs(kPairs), rhs(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    for (int k = 0; k < kSetSize; ++k) {
      lhs[i].push_back(rng.NextBounded(4096));
      rhs[i].push_back(rng.NextBounded(4096));
    }
    SortUnique(&lhs[i]);
    SortUnique(&rhs[i]);
  }

  Timer sorted_timer;
  size_t sorted_total = 0;
  sorted_timer.Start();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kPairs; ++i) {
      sorted_total += SortedIntersect(lhs[i], rhs[i]).size();
    }
  }
  sorted_timer.Stop();

  Timer hash_timer;
  size_t hash_total = 0;
  hash_timer.Start();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kPairs; ++i) {
      std::unordered_set<uint32_t> set(lhs[i].begin(), lhs[i].end());
      std::vector<uint32_t> out;
      for (uint32_t v : rhs[i]) {
        if (set.count(v)) out.push_back(v);
      }
      hash_total += out.size();
    }
  }
  hash_timer.Stop();

  TablePrinter table({"kernel", "time", "checksum"});
  table.AddRow({"sorted-vector merge",
                FormatDouble(sorted_timer.Seconds(), 3) + "s",
                std::to_string(sorted_total)});
  table.AddRow({"hash-set probe",
                FormatDouble(hash_timer.Seconds(), 3) + "s",
                std::to_string(hash_total)});
  std::cout << "\nAblation 5 — intersection kernel choice\n";
  table.Print();
}

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("(ablation)", "contribution of each optimization", config);

  Dataset d3 = MakeSyntheticD3(config.d3_snapshots);
  const DiscoveryParams& params = d3.default_params;

  RunResult ci = RunStreamingAlgorithm(Algorithm::kClusteringIntersection,
                                       params, d3.stream);
  RunResult sc =
      RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d3.stream);

  BuddyDiscoverer bu(params);
  for (const Snapshot& s : d3.stream) bu.ProcessSnapshot(s, nullptr);
  const DiscoveryStats& bu_stats = bu.stats();

  TablePrinter table({"ablation", "baseline", "optimized", "ratio"});
  table.AddRow(
      {"1. smart intersection (ops)", FormatCount(ci.stats.intersections),
       FormatCount(sc.stats.intersections),
       FormatDouble(static_cast<double>(sc.stats.intersections) /
                        static_cast<double>(ci.stats.intersections),
                    3)});
  table.AddRow(
      {"2. closed candidates (peak objects)", FormatCount(ci.space_cost),
       FormatCount(sc.space_cost),
       FormatDouble(static_cast<double>(sc.space_cost) /
                        static_cast<double>(ci.space_cost),
                    3)});
  double prune_rate =
      bu_stats.buddy_pairs_checked == 0
          ? 0.0
          : static_cast<double>(bu_stats.buddy_pairs_pruned) /
                static_cast<double>(bu_stats.buddy_pairs_checked);
  table.AddRow({"3. Lemma-3 buddy-pair pruning",
                FormatCount(bu_stats.buddy_pairs_checked),
                FormatCount(bu_stats.buddy_pairs_pruned),
                FormatPercent(prune_rate)});
  table.AddRow(
      {"4. buddy-token compression (space)", FormatCount(sc.space_cost),
       FormatCount(bu_stats.candidate_objects_peak),
       FormatDouble(static_cast<double>(bu_stats.candidate_objects_peak) /
                        static_cast<double>(sc.space_cost),
                    3)});
  table.AddRow(
      {"   distance ops (SC clustering vs BU total)",
       FormatCount(sc.stats.distance_ops),
       FormatCount(bu_stats.distance_ops),
       FormatDouble(static_cast<double>(bu_stats.distance_ops) /
                        static_cast<double>(sc.stats.distance_ops),
                    3)});
  std::cout << "\nAblations 1-4 — on D3 with default thresholds\n";
  table.Print();
  std::cout << "\nPaper reference points: SC saves ~50% of CI's "
               "intersections and space (Sec. III-B);\nLemma 3 prunes "
               ">80% (Sec. IV-B).\n";

  IntersectionKernelAblation();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
