// Reproduces Fig. 17 (a) time and (b) space vs. the companion duration
// threshold δt ∈ [3, 15] on dataset D3, other parameters at defaults.
//
// Paper result: CI/SC/BU all get faster with larger δt (short-lived
// candidates die before qualifying, shrinking the working set); SW cannot
// benefit (object-growth prunes on size only); TC is flat.

#include <iostream>

#include "bench/bench_common.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 17", "time & space vs duration threshold (D3)", config);

  Dataset d3 = MakeSyntheticD3(config.d3_snapshots);
  TablePrinter time_table({"delta_t", "CI", "SC", "BU", "SW", "TC"});
  TablePrinter space_table({"delta_t", "CI", "SC", "BU", "SW"});

  RunResult tc =
      RunTraClusBaseline(TraClusParamsFrom(d3.default_params), d3.stream);

  for (int delta_t : {3, 5, 7, 9, 11, 13, 15}) {
    DiscoveryParams params = d3.default_params;
    params.duration_threshold = delta_t;
    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, params, d3.stream);
    RunResult sc =
        RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d3.stream);
    RunResult bu =
        RunStreamingAlgorithm(Algorithm::kBuddy, params, d3.stream);
    RunResult sw = RunSwarmBaseline(SwarmParamsFrom(params), d3.stream);

    time_table.AddRow({std::to_string(delta_t),
                       FormatDouble(ci.wall_seconds, 3) + "s",
                       FormatDouble(sc.wall_seconds, 3) + "s",
                       FormatDouble(bu.wall_seconds, 3) + "s",
                       FormatDouble(sw.wall_seconds, 3) + "s",
                       FormatDouble(tc.wall_seconds, 3) + "s"});
    space_table.AddRow({std::to_string(delta_t),
                        FormatCount(ci.space_cost),
                        FormatCount(sc.space_cost),
                        FormatCount(bu.space_cost),
                        FormatCount(sw.space_cost)});
  }

  std::cout << "\nFig. 17(a) — running time vs delta_t\n";
  time_table.Print();
  std::cout << "\nFig. 17(b) — space cost vs delta_t\n";
  space_table.Print();
  std::cout << "\nExpected shape: CI/SC/BU faster with larger delta_t; "
               "SW and TC flat; BU ~an order of magnitude under SC/CI at "
               "delta_t=15.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
