// Extension bench (paper Section VIII future work): companion discovery
// on road networks. Compares Euclidean-ε and network-ε discovery on the
// same road-constrained traffic, sweeping ε — small ε behaves similarly;
// as ε approaches the block size the Euclidean version starts merging
// traffic across parallel roads while the network version holds.

#include <iostream>

#include "bench/bench_common.h"
#include "network/network_dbscan.h"
#include "network/network_gen.h"
#include "util/timer.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("(extension)", "Euclidean vs road-network discovery", config);

  NetworkTrafficOptions options;
  options.num_vehicles = 300;
  options.num_snapshots = 80;
  options.platoon_size_min = 5;
  options.platoon_size_max = 10;
  NetworkTrafficDataset city = GenerateNetworkTraffic(options);

  TablePrinter table({"epsilon", "euclid prec", "euclid rec",
                      "network prec", "network rec", "euclid time",
                      "network time"});

  for (double eps : {30.0, 60.0, 120.0, 200.0, 350.0}) {
    DiscoveryParams params;
    params.cluster.epsilon = eps;
    params.cluster.mu = 3;
    params.size_threshold = 5;
    params.duration_threshold = 15;

    auto run = [&](std::unique_ptr<CompanionDiscoverer> d, double* secs) {
      Timer t;
      t.Start();
      for (const Snapshot& s : city.stream) d->ProcessSnapshot(s, nullptr);
      t.Stop();
      *secs = t.Seconds();
      std::vector<ObjectSet> retrieved;
      for (const Companion& c : d->log().companions()) {
        retrieved.push_back(c.objects);
      }
      return ScoreCompanions(retrieved, city.ground_truth, 0.5);
    };

    double es, ns;
    EffectivenessResult e =
        run(MakeDiscoverer(Algorithm::kSmartClosed, params), &es);
    EffectivenessResult n = run(MakeNetworkDiscoverer(city.graph, params),
                                &ns);

    table.AddRow({FormatDouble(eps, 0), FormatPercent(e.precision),
                  FormatPercent(e.recall), FormatPercent(n.precision),
                  FormatPercent(n.recall), FormatDouble(es, 3) + "s",
                  FormatDouble(ns, 3) + "s"});
  }

  std::cout << "\nEuclidean vs network epsilon on road-constrained "
               "traffic (grid spacing 400 m)\n";
  table.Print();
  std::cout << "\nExpected shape: identical at small epsilon; as epsilon "
               "approaches the block\nsize the network metric dominates "
               "on both precision and recall (the Euclidean\nmetric "
               "additionally merges parallel-road traffic). Both degrade "
               "eventually from\nsame-road platoon encounters, which no "
               "distance metric can separate.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
