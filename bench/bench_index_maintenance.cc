// Quantifies the paper's motivating claim (Section IV, citing [21]):
// "maintaining traditional spatial indexes (such as R-tree or quad-tree)
// at each time snapshot incurs high cost" — the reason traveling buddies
// store object *relationships* instead of coordinates.
//
// Per-snapshot clustering strategies under the stopwatch, same stream:
//   dbscan-n2      plain O(n²) DBSCAN (no index at all)
//   rtree-rebuild  STR bulk-load a fresh R-tree, query ε-neighborhoods
//   rtree-update   incremental delete+reinsert per moved object, query
//   grid           rebuild an ε-grid per snapshot, query
//   buddy          buddy maintenance (Alg. 3) + buddy clustering (Alg. 4)
//
// All five produce identical clusterings (asserted in tests); only cost
// differs.

#include <iostream>

#include "bench/bench_common.h"
#include "core/buddy.h"
#include "core/buddy_clustering.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"
#include "util/timer.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("(motivation)", "spatial-index maintenance cost per snapshot",
         config);

  TablePrinter table({"objects", "dbscan-n2", "rtree-rebuild",
                      "rtree-update", "quadtree-update", "grid",
                      "buddy"});

  for (int n : {500, 1000, 2000, 5000}) {
    Dataset d = MakeSyntheticDataset("bench", n, /*num_snapshots=*/60,
                                     /*seed=*/42);
    const DbscanParams params = d.default_params.cluster;

    Timer plain;
    plain.Start();
    for (const Snapshot& s : d.stream) Dbscan(s, params);
    plain.Stop();

    Timer rebuild;
    {
      RTree tree(8);
      rebuild.Start();
      for (const Snapshot& s : d.stream) {
        DbscanRtree(s, params, &tree, nullptr);
      }
      rebuild.Stop();
    }

    Timer update;
    {
      RTree tree(8);
      const Snapshot* previous = nullptr;
      update.Start();
      for (const Snapshot& s : d.stream) {
        DbscanRtree(s, params, &tree, previous);
        previous = &s;
      }
      update.Stop();
    }

    Timer quadtree;
    {
      // The generators keep the synthetic world inside [0, 20000]².
      QuadTree qt(Point{-500.0, -500.0}, 21000.0, 16);
      const Snapshot& first = d.stream[0];
      quadtree.Start();
      for (size_t i = 0; i < first.size(); ++i) {
        qt.Insert(first.id(i), first.pos(i));
      }
      for (size_t t = 1; t < d.stream.size(); ++t) {
        const Snapshot& prev = d.stream[t - 1];
        const Snapshot& cur = d.stream[t];
        for (size_t i = 0; i < prev.size(); ++i) {
          size_t idx = cur.IndexOf(prev.id(i));
          if (idx != Snapshot::kNpos) {
            qt.Update(prev.id(i), prev.pos(i), cur.pos(idx));
          } else {
            qt.Delete(prev.id(i), prev.pos(i));
          }
        }
        for (size_t i = 0; i < cur.size(); ++i) {
          qt.Search(cur.pos(i), params.epsilon);
        }
      }
      quadtree.Stop();
    }

    Timer grid;
    grid.Start();
    for (const Snapshot& s : d.stream) DbscanGrid(s, params);
    grid.Stop();

    Timer buddy;
    {
      BuddySet buddies(params.epsilon / 2.0);
      buddy.Start();
      buddies.Initialize(d.stream[0]);
      BuddyBasedClustering(d.stream[0], buddies, params);
      for (size_t t = 1; t < d.stream.size(); ++t) {
        buddies.Update(d.stream[t], nullptr);
        BuddyBasedClustering(d.stream[t], buddies, params);
      }
      buddy.Stop();
    }

    auto per_snapshot = [&](const Timer& t) {
      return FormatDouble(t.Seconds() * 1000.0 /
                              static_cast<double>(d.stream.size()),
                          3) + "ms";
    };
    table.AddRow({std::to_string(n), per_snapshot(plain),
                  per_snapshot(rebuild), per_snapshot(update),
                  per_snapshot(quadtree), per_snapshot(grid),
                  per_snapshot(buddy)});
  }

  std::cout << "\nPer-snapshot clustering cost by maintenance strategy "
               "(60-snapshot streams)\n";
  table.Print();
  std::cout << "\nExpected shape: incremental R-tree updates cost ~2x a "
               "wholesale rebuild (the\npaper's [21] point — updating the "
               "index each snapshot is the worst option);\nbuddy "
               "maintenance + clustering matches the per-snapshot ε-grid "
               "and beats every\nR-tree strategy, with the gap growing in "
               "n — and unlike the grid, the buddy\nstructure also "
               "accelerates the intersection step (Fig. 19).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
