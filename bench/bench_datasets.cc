// Reproduces Fig. 15 (a) time and (b) space of companion discovery on the
// four datasets D1–D4, default thresholds (δs=10, δt=10), five methods.
//
// Paper result being reproduced: BU is fastest on every dataset — an order
// of magnitude faster than CI and SW on the largest dataset D4 — and BU's
// space cost is ~20% of SW's and <5% of CI's.

#include <iostream>

#include "bench/bench_common.h"

namespace tcomp {
namespace bench {
namespace {

void RunDataset(const Dataset& dataset, bool include_slow,
                TablePrinter* time_table, TablePrinter* space_table) {
  const DiscoveryParams& params = dataset.default_params;
  std::vector<RunResult> results;
  if (include_slow) {
    results.push_back(RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, params, dataset.stream));
  }
  results.push_back(RunStreamingAlgorithm(Algorithm::kSmartClosed, params,
                                          dataset.stream));
  results.push_back(
      RunStreamingAlgorithm(Algorithm::kBuddy, params, dataset.stream));
  if (include_slow) {
    results.push_back(
        RunSwarmBaseline(SwarmParamsFrom(params), dataset.stream));
  }
  results.push_back(
      RunTraClusBaseline(TraClusParamsFrom(params), dataset.stream));

  std::vector<std::string> time_row = {dataset.name};
  std::vector<std::string> space_row = {dataset.name};
  for (const char* algo : {"CI", "SC", "BU", "SW", "TC"}) {
    const RunResult* found = nullptr;
    for (const RunResult& r : results) {
      if (r.algorithm == algo) found = &r;
    }
    if (found == nullptr) {
      time_row.push_back("-");
      space_row.push_back("-");
      continue;
    }
    time_row.push_back(FormatDouble(found->wall_seconds, 3) + "s");
    space_row.push_back(found->algorithm == "TC"
                            ? "n/a"
                            : FormatCount(found->space_cost));
  }
  time_table->AddRow(std::move(time_row));
  space_table->AddRow(std::move(space_row));
}

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 15", "time & space cost on datasets D1-D4", config);

  TablePrinter time_table({"dataset", "CI", "SC", "BU", "SW", "TC"});
  TablePrinter space_table({"dataset", "CI", "SC", "BU", "SW", "TC"});

  RunDataset(MakeTaxiD1(config.d1_snapshots), /*include_slow=*/true,
             &time_table, &space_table);
  RunDataset(MakeMilitaryD2(config.d2_snapshots), true, &time_table,
             &space_table);
  RunDataset(MakeSyntheticD3(config.d3_snapshots), true, &time_table,
             &space_table);
  RunDataset(MakeSyntheticD4(config.d4_snapshots), !config.skip_slow,
             &time_table, &space_table);

  std::cout << "\nFig. 15(a) — total running time (log axis in paper)\n";
  time_table.Print();
  std::cout << "\nFig. 15(b) — space cost: peak stored candidate size in "
               "objects (TC excluded, as in the paper)\n";
  space_table.Print();
  std::cout << "\nExpected shape: BU fastest everywhere, ~10x faster than "
               "CI/SW on D4;\nBU space ~20% of SW and <5% of CI.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
