// Perf-trajectory harness: measures the word-parallel set-algebra kernels
// against the pure sorted-merge path and emits one JSON record on stdout
// (tools/bench_json.py wraps this into BENCH_PR4.json). Two layers:
//
//   micro — the I-step inner loop in isolation: one candidate probed
//     against k clusters, merge vs. bitset; and the companion-log
//     closedness scan with and without the signature prefilter.
//   e2e  — full CI/SC/BU discovery over a group-model stream with the
//     kernels toggled on vs. off: snapshots/sec and the intersection
//     counters (which must match exactly — the kernels are a pure
//     optimization).
//   incremental — CI/SC over a high-coherence stream with the carried-
//     state clustering layer toggled on vs. off: clustering-stage seconds,
//     reuse ratio, and product identity (same contract — byte-identical
//     outputs, only the work to produce them shrinks).
//   soa  — the PR 9 structure-of-arrays ε-filter hot path: a micro layer
//     timing one query against a contiguous candidate block (scalar
//     WithinEps walk vs EpsFilterBatch vs EpsFilterGather, checksums
//     compared), and cluster-stage e2e with SetSoAKernelsEnabled toggled
//     on vs off (kernels and incremental clustering held constant) over
//     coherent, transit-burst, and spatially-sparse scenarios. Same
//     contract as every other toggle here: byte-identical products and
//     identical distance_ops, only the time to produce them shrinks.
//   sharded — SC end-to-end at shards ∈ {1, 2, 4, 8}: shards=1 is the
//     stock single-worker path, shards>1 routes the C-step through the
//     src/shard/ engine. Products must be byte-identical at every shard
//     count (digest over the companion log). On a single-core host the
//     speedup is algorithmic — per-stripe ε-cell grids with stripe-local
//     extents versus the single-worker full-rebuild path's 2ε-padded
//     grid — and extra cores scale the per-shard work on top of that;
//     the recorded provenance (tools/bench_json.py) says which machine
//     produced the numbers.
//
// Every timed comparison is preceded by warmup_iters untimed passes.
// Flags: --quick (small smoke workload), --objects N, --snapshots N,
//        --iters N (micro repetitions), --reps N, --warmup N.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "core/candidate.h"
#include "core/dbscan.h"
#include "core/discoverer.h"
#include "obs/discovery_metrics.h"
#include "core/smart_closed.h"
#include "data/group_model.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "shard/sharded_engine.h"
#include "util/dense_bitset.h"
#include "util/eps_filter.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/set_signature.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace tcomp {
namespace {

struct HarnessConfig {
  int objects = 800;
  int snapshots = 96;
  int micro_iters = 2000;
  int e2e_reps = 3;
  /// Untimed full passes (per mode) before the timed reps: fills the page
  /// cache, warms the branch predictors and the allocator, and gets CPU
  /// frequency scaling out of its idle state so rep 0 is not
  /// systematically slower than the rest.
  int warmup_iters = 1;
};

/// Same trajectories, object ids spread out by `stride`: the universe is
/// ~stride× the population, so BitsetProfitable rejects every snapshot
/// and the discoverers must fall back to the merge path. The sparse e2e
/// entries document that the kernel gating costs nothing there.
SnapshotStream SparsifyIds(const SnapshotStream& stream, ObjectId stride) {
  SnapshotStream out;
  out.reserve(stream.size());
  for (const Snapshot& s : stream) {
    std::vector<ObjectPosition> pos;
    pos.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      pos.push_back(ObjectPosition{s.id(i) * stride, s.pos(i)});
    }
    out.push_back(Snapshot(std::move(pos), s.duration()));
  }
  return out;
}

ObjectSet RandomSortedSet(Pcg32& rng, uint32_t universe, size_t size) {
  ObjectSet out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) out.push_back(rng.NextBounded(universe));
  SortUnique(&out);
  return out;
}

/// One candidate probed against `clusters` — the exact shape of the CI/SC
/// I-step inner loop. Returns ns per candidate×cluster intersection.
struct MicroResult {
  double merge_ns = 0.0;
  double bitset_ns = 0.0;
  uint64_t checksum_merge = 0;   // defeats dead-code elimination and
  uint64_t checksum_bitset = 0;  // doubles as an equivalence check
};

MicroResult BenchIntersection(int iters) {
  constexpr uint32_t kUniverse = 8192;
  constexpr int kClusters = 32;
  Pcg32 rng(42);
  ObjectSet candidate = RandomSortedSet(rng, kUniverse, 1024);
  std::vector<ObjectSet> clusters;
  for (int i = 0; i < kClusters; ++i) {
    clusters.push_back(RandomSortedSet(rng, kUniverse, 256));
  }

  MicroResult r;
  ObjectSet inter;
  Timer merge;
  merge.Start();
  for (int it = 0; it < iters; ++it) {
    for (const ObjectSet& c : clusters) {
      SortedIntersect(candidate, c, &inter);
      r.checksum_merge += inter.size();
    }
  }
  merge.Stop();

  DenseBitset members(kUniverse);
  Timer bitset;
  bitset.Start();
  for (int it = 0; it < iters; ++it) {
    members.SetSparse(candidate);
    for (const ObjectSet& c : clusters) {
      IntersectInto(c, members, &inter);
      r.checksum_bitset += inter.size();
    }
    members.ClearSparse(candidate);
  }
  bitset.Stop();

  const double ops = static_cast<double>(iters) * kClusters;
  r.merge_ns = merge.Seconds() * 1e9 / ops;
  r.bitset_ns = bitset.Seconds() * 1e9 / ops;
  return r;
}

/// CompanionLog::Report-style closedness scan: each query checked for
/// subset against every stored companion, with and without the
/// signature/bounds prefilter. Returns ns per query×companion check.
struct ScanResult {
  double plain_ns = 0.0;
  double prefilter_ns = 0.0;
  uint64_t checksum_plain = 0;
  uint64_t checksum_prefilter = 0;
};

ScanResult BenchClosednessScan(int iters) {
  constexpr uint32_t kUniverse = 4096;
  constexpr int kStored = 512;
  constexpr int kQueries = 64;
  Pcg32 rng(43);
  std::vector<ObjectSet> stored;
  std::vector<SetSignature> signatures;
  for (int i = 0; i < kStored; ++i) {
    stored.push_back(RandomSortedSet(rng, kUniverse, 24 + rng.NextBounded(16)));
    signatures.push_back(SetSignature::Of(stored.back()));
  }
  std::vector<ObjectSet> queries;
  for (int i = 0; i < kQueries; ++i) {
    if (i % 4 == 0) {
      // True subset of a stored companion: the case the scan must accept.
      const ObjectSet& base = stored[rng.NextBounded(kStored)];
      ObjectSet q;
      for (ObjectId o : base) {
        if (rng.NextBernoulli(0.7)) q.push_back(o);
      }
      queries.push_back(std::move(q));
    } else {
      queries.push_back(RandomSortedSet(rng, kUniverse, 16 + rng.NextBounded(16)));
    }
  }

  ScanResult r;
  Timer plain;
  plain.Start();
  for (int it = 0; it < iters; ++it) {
    for (const ObjectSet& q : queries) {
      for (const ObjectSet& s : stored) {
        if (SortedIsSubset(q, s)) ++r.checksum_plain;
      }
    }
  }
  plain.Stop();

  Timer pre;
  pre.Start();
  for (int it = 0; it < iters; ++it) {
    for (const ObjectSet& q : queries) {
      const SetSignature qsig = SetSignature::Of(q);
      for (int i = 0; i < kStored; ++i) {
        if (qsig.MaybeSubsetOf(signatures[i]) && SortedIsSubset(q, stored[i])) {
          ++r.checksum_prefilter;
        }
      }
    }
  }
  pre.Stop();

  const double ops = static_cast<double>(iters) * kQueries * kStored;
  r.plain_ns = plain.Seconds() * 1e9 / ops;
  r.prefilter_ns = pre.Seconds() * 1e9 / ops;
  return r;
}

struct E2eResult {
  std::string algorithm;
  double on_seconds = 0.0;   // best-of-reps full ProcessSnapshot loop
  double off_seconds = 0.0;
  double on_istep_seconds = 0.0;   // I-step (candidate intersection) stage
  double off_istep_seconds = 0.0;  // only — where the kernels apply
  double shared_seconds = 0.0;     // best (total - istep) across both modes
  int64_t on_intersections = 0;
  int64_t off_intersections = 0;
  size_t companions = 0;
  bool identical_counters = false;
};

/// Best-of-`reps` runs per kernel mode. Clustering dominates the total at
/// realistic populations (DBSCAN is O(n²) while the smart I-steps are
/// near-linear — that asymmetry is the paper's point), so the per-stage
/// intersect time the discoverers already track is the low-noise signal
/// for the kernel comparison; totals are reported for context. Every
/// kernel-sensitive operation (intersections, closedness scans, companion
/// reports) runs inside the timed I-step, so the remaining stages do
/// bit-identical work in both modes — the normalized totals rebuild each
/// mode's wall time from the single best shared-stage measurement plus
/// that mode's own I-step, removing run-to-run noise the toggle cannot
/// cause.
using DiscovererFactory = std::function<std::unique_ptr<CompanionDiscoverer>()>;

E2eResult BenchEndToEnd(const std::string& name, const DiscovererFactory& make,
                        const SnapshotStream& stream, int reps, int warmup) {
  E2eResult r;
  r.algorithm = name;
  // Untimed warm-up passes, one per mode, discarded entirely.
  for (int w = 0; w < warmup; ++w) {
    for (bool kernels : {true, false}) {
      SetBitsetKernelsEnabled(kernels);
      std::unique_ptr<CompanionDiscoverer> d = make();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    }
  }
  // The modes alternate within each rep (paired measurement): machine
  // drift that spans seconds — frequency scaling, a noisy neighbor —
  // then hits both modes alike instead of biasing whichever ran last.
  for (int rep = 0; rep < reps; ++rep) {
    for (bool kernels : {true, false}) {
      SetBitsetKernelsEnabled(kernels);
      std::unique_ptr<CompanionDiscoverer> d = make();
      Timer t;
      t.Start();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
      t.Stop();
      const double istep = d->stats().intersect_seconds;
      double& best_total = kernels ? r.on_seconds : r.off_seconds;
      double& best_istep = kernels ? r.on_istep_seconds : r.off_istep_seconds;
      if (rep == 0 || t.Seconds() < best_total) best_total = t.Seconds();
      if (rep == 0 || istep < best_istep) best_istep = istep;
      const double shared = t.Seconds() - istep;
      if (r.shared_seconds == 0.0 || shared < r.shared_seconds) {
        r.shared_seconds = shared;
      }
      if (rep == 0) {
        if (kernels) {
          r.on_intersections = d->stats().intersections;
          r.companions = d->log().companions().size();
        } else {
          r.off_intersections = d->stats().intersections;
        }
      }
    }
  }
  SetBitsetKernelsEnabled(true);
  r.identical_counters = r.on_intersections == r.off_intersections;
  return r;
}

double SafeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// Incremental clustering vs full per-snapshot re-clustering on a
/// high-coherence stream (objects move less than the Δ = ε/2 stability
/// slack per snapshot — the regime the carried-state layer targets; the
/// kernel-comparison streams above move too fast to reuse anything). The
/// low-noise signal is the clustering-stage time the discoverers already
/// track; products must be identical by construction.
struct IncrementalResult {
  std::string algorithm;
  double full_total_seconds = 0.0;  // best-of-reps, incremental off
  double inc_total_seconds = 0.0;   // best-of-reps, incremental on
  double full_cluster_seconds = 0.0;
  double inc_cluster_seconds = 0.0;
  int64_t cluster_reuse = 0;
  int64_t cluster_dirty = 0;
  int64_t cluster_full_rebuilds = 0;
  int64_t full_intersections = 0;
  int64_t inc_intersections = 0;
  size_t full_companions = 0;
  size_t inc_companions = 0;
  bool identical_products = false;
};

IncrementalResult BenchIncremental(const std::string& name,
                                   const DiscovererFactory& make,
                                   const SnapshotStream& stream, int reps,
                                   int warmup) {
  IncrementalResult r;
  r.algorithm = name;
  for (int w = 0; w < warmup; ++w) {
    for (bool incremental : {true, false}) {
      SetIncrementalClusteringEnabled(incremental);
      std::unique_ptr<CompanionDiscoverer> d = make();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    }
  }
  // Paired alternation and best-of-reps, exactly like BenchEndToEnd.
  for (int rep = 0; rep < reps; ++rep) {
    for (bool incremental : {true, false}) {
      SetIncrementalClusteringEnabled(incremental);
      std::unique_ptr<CompanionDiscoverer> d = make();
      Timer t;
      t.Start();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
      t.Stop();
      double& best_total =
          incremental ? r.inc_total_seconds : r.full_total_seconds;
      double& best_cluster =
          incremental ? r.inc_cluster_seconds : r.full_cluster_seconds;
      if (rep == 0 || t.Seconds() < best_total) best_total = t.Seconds();
      const double cluster = d->stats().cluster_seconds;
      if (rep == 0 || cluster < best_cluster) best_cluster = cluster;
      if (rep == 0) {
        if (incremental) {
          r.cluster_reuse = d->stats().cluster_reuse;
          r.cluster_dirty = d->stats().cluster_dirty;
          r.cluster_full_rebuilds = d->stats().cluster_full_rebuilds;
          r.inc_intersections = d->stats().intersections;
          r.inc_companions = d->log().companions().size();
        } else {
          r.full_intersections = d->stats().intersections;
          r.full_companions = d->log().companions().size();
        }
      }
    }
  }
  SetIncrementalClusteringEnabled(true);
  r.identical_products = r.inc_intersections == r.full_intersections &&
                         r.inc_companions == r.full_companions;
  return r;
}

/// Order-sensitive digest over the full companion log — object sets,
/// durations (exact bits), and first-qualification indices. Two runs with
/// equal digests produced byte-identical discovery products.
uint64_t CompanionDigest(const CompanionLog& log) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const Companion& c : log.companions()) {
    mix(c.objects.size());
    for (ObjectId o : c.objects) mix(static_cast<uint64_t>(o));
    uint64_t duration_bits = 0;
    std::memcpy(&duration_bits, &c.duration, sizeof(duration_bits));
    mix(duration_bits);
    mix(static_cast<uint64_t>(c.snapshot_index));
  }
  return h;
}

/// One query point probed against a contiguous block of candidates — the
/// exact shape of the grid range query and the shard plane-sweep inner
/// loop. The scalar side walks the AoS snapshot layout through WithinEps
/// (the pre-PR-9 hot path); the batch side runs EpsFilterBatch over the
/// SoA mirror; the gather side runs EpsFilterGather over an explicit
/// index list (the FinishExact shape). Checksums are survivor-index sums
/// and must agree exactly — the kernels share the scalar compare.
struct EpsMicroResult {
  double scalar_ns = 0.0;  // per candidate lane
  double batch_ns = 0.0;
  double gather_ns = 0.0;
  uint64_t checksum_scalar = 0;
  uint64_t checksum_batch = 0;
  uint64_t checksum_gather = 0;
};

EpsMicroResult BenchEpsFilter(int iters) {
  constexpr size_t kPoints = 4096;
  constexpr int kQueries = 64;
  const double eps = 18.0;
  const double eps2 = eps * eps;
  Pcg32 rng(44);
  auto coord = [&rng] {
    // Density tuned so a query keeps ~2% of the block: survivors exist
    // (the compaction path is exercised) without the compare pass
    // degenerating into an all-hits copy.
    return static_cast<double>(rng.NextBounded(100000)) / 100000.0 * 512.0;
  };
  std::vector<Point> pts(kPoints);
  std::vector<double> xs(kPoints), ys(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    pts[i] = Point{coord(), coord()};
    xs[i] = pts[i].x;
    ys[i] = pts[i].y;
  }
  std::vector<Point> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) queries[q] = Point{coord(), coord()};
  std::vector<uint32_t> cand(kPoints), out(kPoints);
  for (size_t i = 0; i < kPoints; ++i) cand[i] = static_cast<uint32_t>(i);

  EpsMicroResult r;
  Timer scalar;
  scalar.Start();
  for (int it = 0; it < iters; ++it) {
    for (const Point& q : queries) {
      for (size_t i = 0; i < kPoints; ++i) {
        if (WithinEps(q, pts[i], eps2)) r.checksum_scalar += i;
      }
    }
  }
  scalar.Stop();

  Timer batch;
  batch.Start();
  for (int it = 0; it < iters; ++it) {
    for (const Point& q : queries) {
      const size_t m = EpsFilterBatch(xs.data(), ys.data(), 0,
                                      static_cast<uint32_t>(kPoints), q.x,
                                      q.y, eps2, out.data());
      for (size_t k = 0; k < m; ++k) r.checksum_batch += out[k];
    }
  }
  batch.Stop();

  Timer gather;
  gather.Start();
  for (int it = 0; it < iters; ++it) {
    for (const Point& q : queries) {
      const size_t m = EpsFilterGather(xs.data(), ys.data(), cand.data(),
                                       kPoints, q.x, q.y, eps2, out.data());
      for (size_t k = 0; k < m; ++k) r.checksum_gather += out[k];
    }
  }
  gather.Stop();

  const double lanes = static_cast<double>(iters) * kQueries * kPoints;
  r.scalar_ns = scalar.Seconds() * 1e9 / lanes;
  r.batch_ns = batch.Seconds() * 1e9 / lanes;
  r.gather_ns = gather.Seconds() * 1e9 / lanes;
  return r;
}

/// Cluster-stage e2e with the SoA kernels toggled on vs off. Kernels and
/// incremental clustering stay at their defaults in both modes — the
/// toggle isolates the SoA rewiring. identical_products is the strictest
/// gate in this file: the full companion-log digest AND the distance_ops
/// counter must match, because the SoA paths re-derive the same
/// candidate sets in a different evaluation order and both the products
/// and the counted work must come out untouched.
struct SoAResult {
  std::string scenario;
  std::string algorithm;
  int objects = 0;
  double on_total_seconds = 0.0;  // best-of-reps, SoA kernels on
  double off_total_seconds = 0.0;
  double on_cluster_seconds = 0.0;  // best-of-reps C-step stage time
  double off_cluster_seconds = 0.0;
  double on_eps_filter_seconds = 0.0;  // FinishExact filter slice (the
  double off_eps_filter_seconds = 0.0;  // incremental layer only)
  int64_t on_distance_ops = 0;
  int64_t off_distance_ops = 0;
  int64_t soa_batches = 0;
  int64_t soa_lanes = 0;
  uint64_t on_digest = 0;
  uint64_t off_digest = 0;
  size_t companions = 0;
  bool identical_products = false;
};

SoAResult BenchSoA(const std::string& scenario, const std::string& algorithm,
                   const DiscovererFactory& make, const SnapshotStream& stream,
                   int objects, int reps, int warmup) {
  SoAResult r;
  r.scenario = scenario;
  r.algorithm = algorithm;
  r.objects = objects;
  for (int w = 0; w < warmup; ++w) {
    for (bool soa : {true, false}) {
      SetSoAKernelsEnabled(soa);
      std::unique_ptr<CompanionDiscoverer> d = make();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    }
  }
  // Paired alternation and best-of-reps, exactly like BenchEndToEnd.
  for (int rep = 0; rep < reps; ++rep) {
    for (bool soa : {true, false}) {
      SetSoAKernelsEnabled(soa);
      std::unique_ptr<CompanionDiscoverer> d = make();
      Timer t;
      t.Start();
      for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
      t.Stop();
      double& best_total = soa ? r.on_total_seconds : r.off_total_seconds;
      double& best_cluster =
          soa ? r.on_cluster_seconds : r.off_cluster_seconds;
      double& best_filter =
          soa ? r.on_eps_filter_seconds : r.off_eps_filter_seconds;
      if (rep == 0 || t.Seconds() < best_total) best_total = t.Seconds();
      const double cluster = d->stats().cluster_seconds;
      if (rep == 0 || cluster < best_cluster) best_cluster = cluster;
      const double filter = d->stats().eps_filter_seconds;
      if (rep == 0 || filter < best_filter) best_filter = filter;
      if (rep == 0) {
        if (soa) {
          r.on_distance_ops = d->stats().distance_ops;
          r.soa_batches = d->stats().soa_batches;
          r.soa_lanes = d->stats().soa_lanes;
          r.companions = d->log().companions().size();
          r.on_digest = CompanionDigest(d->log());
        } else {
          r.off_distance_ops = d->stats().distance_ops;
          r.off_digest = CompanionDigest(d->log());
        }
      }
    }
  }
  SetSoAKernelsEnabled(true);
  r.identical_products = r.on_digest == r.off_digest &&
                         r.on_distance_ops == r.off_distance_ops;
  return r;
}

/// SC end-to-end at one shard count. shards=1 is the stock single-worker
/// discoverer exactly as `tcomp serve` runs it today; shards>1 wires a
/// ShardedClusterEngine in through SetClusterProvider, exactly as the
/// service pipeline does under `--shards N`.
/// Accumulates the engine's shard-stage seconds — the JSON carries the
/// route/work/merge split so a sharded-path regression can be localized
/// straight from the recorded file.
struct ShardStageSums : StageTimerSink {
  double route = 0.0, work = 0.0, merge = 0.0;
  void RecordStage(Stage stage, double seconds) override {
    if (stage == Stage::kShardRoute) route += seconds;
    if (stage == Stage::kShardCluster) work += seconds;
    if (stage == Stage::kMergeStitch) merge += seconds;
  }
};

struct ShardedResult {
  std::string scenario;
  int shards = 1;
  int objects = 0;
  double seconds = 0.0;          // best-of-reps full ProcessSnapshot loop
  double cluster_seconds = 0.0;  // best-of-reps C-step stage time
  double route_seconds = 0.0;    // partition stage, best-timed rep
  double work_seconds = 0.0;     // per-stripe neighborhoods, best-timed rep
  double merge_seconds = 0.0;    // stitch + finisher, best-timed rep
  int64_t distance_ops = 0;
  int64_t halo_objects = 0;  // Σ halo replicas across the stream
  int64_t halo_peak = 0;     // largest per-snapshot halo total
  size_t companions = 0;
  uint64_t digest = 0;
  bool identical_products = false;  // vs the scenario's shards=1 entry
};

/// One scenario across every shard count, with the shard counts
/// alternating *within* each rep (the same paired-measurement discipline
/// as BenchEndToEnd): machine drift spanning seconds hits every shard
/// count alike instead of biasing the speedup ratios.
std::vector<ShardedResult> BenchShardedScenario(
    const std::string& scenario, const DiscoveryParams& params,
    const SnapshotStream& stream, int objects,
    const std::vector<int>& shard_counts, int reps, int warmup) {
  std::vector<ShardedResult> out(shard_counts.size());
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    out[i].scenario = scenario;
    out[i].shards = shard_counts[i];
    out[i].objects = objects;
  }
  auto run = [&](size_t ci, bool timed, int rep) {
    ShardedResult& r = out[ci];
    // The engine outlives the discoverer holding the provider closure
    // (declaration order — reverse destruction).
    std::unique_ptr<ShardedClusterEngine> engine;
    std::unique_ptr<CompanionDiscoverer> d =
        MakeDiscoverer(Algorithm::kSmartClosed, params);
    ShardStageSums stages;
    if (r.shards > 1) {
      engine = std::make_unique<ShardedClusterEngine>(params.cluster,
                                                      r.shards);
      engine->set_stage_sink(&stages);
      ShardedClusterEngine* raw = engine.get();
      d->SetClusterProvider(
          [raw](const Snapshot& snapshot, int64_t* distance_ops) {
            return raw->Cluster(snapshot, distance_ops);
          });
    }
    Timer t;
    t.Start();
    for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    t.Stop();
    if (!timed) return;
    if (rep == 0 || t.Seconds() < r.seconds) {
      r.seconds = t.Seconds();
      r.route_seconds = stages.route;
      r.work_seconds = stages.work;
      r.merge_seconds = stages.merge;
    }
    const double cluster = d->stats().cluster_seconds;
    if (rep == 0 || cluster < r.cluster_seconds) r.cluster_seconds = cluster;
    if (rep == 0) {
      r.distance_ops = d->stats().distance_ops;
      r.companions = d->log().companions().size();
      r.digest = CompanionDigest(d->log());
      if (engine != nullptr) {
        r.halo_objects = engine->stats().halo_objects;
        r.halo_peak = engine->stats().halo_peak;
      }
    }
  };
  for (int w = 0; w < warmup; ++w) {
    for (size_t ci = 0; ci < out.size(); ++ci) run(ci, /*timed=*/false, 0);
  }
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t ci = 0; ci < out.size(); ++ci) run(ci, /*timed=*/true, rep);
  }
  for (ShardedResult& r : out) {
    r.identical_products =
        r.digest == out[0].digest && r.companions == out[0].companions;
  }
  return out;
}

/// One instrumented pass per algorithm with the obs stage sink attached:
/// the BENCH JSON carries the full per-stage latency histogram snapshot
/// (registry JSON), so a perf regression can be localized to a stage
/// straight from the recorded file. Runs after the timed comparisons —
/// instrumentation overhead (nanoseconds per stage) never touches them.
std::string StageMetricsJson(const DiscoveryParams& params,
                             const SnapshotStream& stream) {
  MetricsRegistry registry;
  MetricsStageSink sink(&registry);
  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    std::unique_ptr<CompanionDiscoverer> d = MakeDiscoverer(algorithm, params);
    d->set_stage_sink(&sink);
    for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    if (algorithm == Algorithm::kBuddy) {
      ExportDiscoveryMetrics(d->stats(),
                             static_cast<int64_t>(d->log().size()),
                             &registry);
    }
  }
  return registry.JsonText();
}

int Main(int argc, char** argv) {
  FlagParser flags;
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  HarnessConfig config;
  if (flags.GetBool("quick", false)) {
    config.objects = 240;
    config.snapshots = 24;
    config.micro_iters = 100;
    config.e2e_reps = 1;
  }
  config.objects = flags.GetInt("objects", config.objects);
  config.snapshots = flags.GetInt("snapshots", config.snapshots);
  config.micro_iters = flags.GetInt("iters", config.micro_iters);
  config.e2e_reps = flags.GetInt("reps", config.e2e_reps);
  config.warmup_iters = flags.GetInt("warmup", config.warmup_iters);

  MicroResult micro = BenchIntersection(config.micro_iters);
  ScanResult scan = BenchClosednessScan(config.micro_iters / 10 + 1);

  GroupModelOptions options;
  options.num_objects = config.objects;
  options.num_snapshots = config.snapshots;
  // Group density comparable to the differential-test stream (90 objects
  // on a 1600-unit square) at any population.
  options.area_size = 170.0 * std::sqrt(static_cast<double>(config.objects));
  // Larger groups than the differential-test stream: dense candidate and
  // cluster sets are the regime the bitset kernels target.
  options.min_group_size = flags.GetInt("group-min", 16);
  options.max_group_size = flags.GetInt("group-max", 32);
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = 404;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 7;

  std::vector<E2eResult> e2e;
  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    e2e.push_back(BenchEndToEnd(
        AlgorithmName(algorithm),
        [&] { return MakeDiscoverer(algorithm, params); }, data.stream,
        config.e2e_reps, config.warmup_iters));
  }
  // SC over grid DBSCAN: with near-linear clustering (the production
  // choice at scale) the candidate-intersection and closedness stages set
  // the pace, which is where the kernels and the signature prefilter act.
  e2e.push_back(BenchEndToEnd(
      "SC_grid",
      [&]() -> std::unique_ptr<CompanionDiscoverer> {
        return std::make_unique<SmartClosedDiscoverer>(
            params, [&](const Snapshot& s) {
              return DbscanGrid(s, params.cluster);
            });
      },
      data.stream, config.e2e_reps, config.warmup_iters));
  // Sparse-id regression guard: ids spread ~10^5 apart force the merge
  // fallback, so speedup ≈ 1.0 is the pass condition (the gate itself
  // must cost nothing).
  SnapshotStream sparse = SparsifyIds(data.stream, 120'001);
  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed}) {
    std::string name = std::string(AlgorithmName(algorithm)) + "_sparse";
    e2e.push_back(BenchEndToEnd(
        name, [&] { return MakeDiscoverer(algorithm, params); },
        sparse, config.e2e_reps, config.warmup_iters));
  }

  // High-coherence scenario for the incremental clustering layer: same
  // density, but per-snapshot motion far below the Δ = ε/2 stability
  // slack, as in slow-moving fleets sampled at a high rate. The
  // population is scaled up 2.5x because that is the regime the layer
  // targets: at the kernel-bench sizes the full per-snapshot re-cluster
  // is already trivial, and the carried-state bookkeeping has nothing to
  // amortize against. (Density stays fixed via the sqrt-area rule, so
  // neighborhood sizes — and the products — stay comparable.)
  GroupModelOptions coherent_options = options;
  coherent_options.num_objects = config.objects * 5 / 2;
  coherent_options.area_size =
      170.0 * std::sqrt(static_cast<double>(coherent_options.num_objects));
  coherent_options.group_speed = 1.0;
  coherent_options.free_speed = 1.5;
  coherent_options.member_jitter = 0.8;
  coherent_options.seed = 405;
  GroupDataset coherent = GenerateGroupStream(coherent_options);
  std::vector<IncrementalResult> incremental;
  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed}) {
    incremental.push_back(BenchIncremental(
        AlgorithmName(algorithm),
        [&] { return MakeDiscoverer(algorithm, params); }, coherent.stream,
        config.e2e_reps, config.warmup_iters));
  }

  // Sharded C-step scenarios, at 3x the kernel-bench population (density
  // fixed via the sqrt-area rule) — fleet-scale streams are the regime
  // the shard subsystem targets; at small populations the per-snapshot
  // fixed costs both paths share drown the comparison, exactly as with
  // the incremental layer above. `coherent_multi_tile` keeps the
  // kernel-bench dynamics: coherent groups sweeping a world hundreds of
  // ε-cells wide, moving far above the Δ = ε/2 slack, so the
  // single-worker baseline full-rebuilds on its 2ε-padded grid every
  // snapshot. `transit_burst` adds heavy group splits/departures on top
  // (terminal-transit bursts: companions keep dissolving and reforming),
  // stressing the partition/merge path with unstable cluster structure.
  GroupModelOptions tile_options = options;
  tile_options.num_objects = config.objects * 3;
  tile_options.area_size =
      170.0 * std::sqrt(static_cast<double>(tile_options.num_objects));
  GroupDataset tile = GenerateGroupStream(tile_options);
  GroupModelOptions burst_options = tile_options;
  burst_options.split_probability = 0.10;
  burst_options.leave_probability = 0.05;
  burst_options.seed = 406;
  GroupDataset burst = GenerateGroupStream(burst_options);
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  std::vector<ShardedResult> sharded = BenchShardedScenario(
      "coherent_multi_tile", params, tile.stream, tile_options.num_objects,
      shard_counts, config.e2e_reps, config.warmup_iters);
  {
    std::vector<ShardedResult> more = BenchShardedScenario(
        "transit_burst", params, burst.stream, burst_options.num_objects,
        shard_counts, config.e2e_reps, config.warmup_iters);
    sharded.insert(sharded.end(), more.begin(), more.end());
  }

  // SoA ε-filter layer (PR 9), measured in the dense-companion regime
  // the paper targets: convoy-scale groups (64-128 members inside the
  // default 25-unit spread) where ε-neighborhoods run tens of candidates
  // deep and the ε-filter is the C-step's dominant slice. The gate entry
  // runs SC over the grid DBSCAN backend: there the whole C-step is the
  // range-query loop the SoA kernels rewired, so cluster_speedup reads
  // the kernels directly. `coherent_incremental` runs the stock SC
  // (incremental clustering on in both modes) and shows how the win
  // compounds with PR 6 — fewer points probed, each probe batched.
  // `transit_burst` layers the sharded bench's split/leave churn on top.
  // `sparse_area` is the regression guard: small wandering groups spread
  // over a huge world leave the kernels nothing to amortize against, so
  // ~1.0x is the pass condition.
  EpsMicroResult eps_micro = BenchEpsFilter(config.micro_iters / 10 + 1);
  DiscovererFactory make_sc_grid = [&]() -> std::unique_ptr<CompanionDiscoverer> {
    std::unique_ptr<CompanionDiscoverer> d =
        MakeDiscoverer(Algorithm::kSmartClosed, params);
    d->SetClusterProvider([&params](const Snapshot& s, int64_t* distance_ops) {
      return DbscanGrid(s, params.cluster, distance_ops);
    });
    return d;
  };
  DiscovererFactory make_sc = [&] {
    return MakeDiscoverer(Algorithm::kSmartClosed, params);
  };
  GroupModelOptions convoy_options = coherent_options;
  convoy_options.min_group_size = 64;
  convoy_options.max_group_size = 128;
  GroupDataset convoy = GenerateGroupStream(convoy_options);
  GroupModelOptions convoy_burst_options = convoy_options;
  convoy_burst_options.split_probability = 0.10;
  convoy_burst_options.leave_probability = 0.05;
  convoy_burst_options.seed = 406;
  GroupDataset convoy_burst = GenerateGroupStream(convoy_burst_options);
  GroupModelOptions sparse_soa_options = options;
  sparse_soa_options.min_group_size = 3;
  sparse_soa_options.max_group_size = 6;
  sparse_soa_options.area_size =
      600.0 * std::sqrt(static_cast<double>(config.objects));
  sparse_soa_options.seed = 407;
  GroupDataset sparse_soa = GenerateGroupStream(sparse_soa_options);
  std::vector<SoAResult> soa;
  soa.push_back(BenchSoA("coherent", "SC_grid", make_sc_grid, convoy.stream,
                         convoy_options.num_objects, config.e2e_reps,
                         config.warmup_iters));
  soa.push_back(BenchSoA("coherent_incremental", "SC", make_sc,
                         convoy.stream, convoy_options.num_objects,
                         config.e2e_reps, config.warmup_iters));
  soa.push_back(BenchSoA("transit_burst", "SC_grid", make_sc_grid,
                         convoy_burst.stream, convoy_burst_options.num_objects,
                         config.e2e_reps, config.warmup_iters));
  soa.push_back(BenchSoA("sparse_area", "SC_grid", make_sc_grid,
                         sparse_soa.stream, sparse_soa_options.num_objects,
                         config.e2e_reps, config.warmup_iters));

  std::ostream& out = std::cout;
  out << "{\n";
  out << "  \"config\": {\"objects\": " << config.objects
      << ", \"snapshots\": " << config.snapshots
      << ", \"micro_iters\": " << config.micro_iters
      << ", \"e2e_reps\": " << config.e2e_reps
      << ", \"warmup_iters\": " << config.warmup_iters << "},\n";
  out << "  \"micro\": {\n";
  out << "    \"intersect_merge_ns\": " << micro.merge_ns << ",\n";
  out << "    \"intersect_bitset_ns\": " << micro.bitset_ns << ",\n";
  out << "    \"intersect_speedup\": "
      << SafeRatio(micro.merge_ns, micro.bitset_ns) << ",\n";
  out << "    \"intersect_checksums_match\": "
      << (micro.checksum_merge == micro.checksum_bitset ? "true" : "false")
      << ",\n";
  out << "    \"closedness_plain_ns\": " << scan.plain_ns << ",\n";
  out << "    \"closedness_prefilter_ns\": " << scan.prefilter_ns << ",\n";
  out << "    \"closedness_speedup\": "
      << SafeRatio(scan.plain_ns, scan.prefilter_ns) << ",\n";
  out << "    \"closedness_checksums_match\": "
      << (scan.checksum_plain == scan.checksum_prefilter ? "true" : "false")
      << "\n  },\n";
  out << "  \"e2e\": [\n";
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2eResult& r = e2e[i];
    const double norm_on = r.shared_seconds + r.on_istep_seconds;
    const double norm_off = r.shared_seconds + r.off_istep_seconds;
    out << "    {\"algorithm\": \"" << r.algorithm << "\""
        << ", \"kernels_on_seconds\": " << r.on_seconds
        << ", \"kernels_off_seconds\": " << r.off_seconds
        << ", \"kernels_on_snapshots_per_sec\": "
        << SafeRatio(config.snapshots, r.on_seconds)
        << ", \"kernels_off_snapshots_per_sec\": "
        << SafeRatio(config.snapshots, r.off_seconds)
        << ", \"total_speedup\": " << SafeRatio(r.off_seconds, r.on_seconds)
        << ", \"istep_on_seconds\": " << r.on_istep_seconds
        << ", \"istep_off_seconds\": " << r.off_istep_seconds
        << ", \"istep_speedup\": "
        << SafeRatio(r.off_istep_seconds, r.on_istep_seconds)
        << ", \"norm_on_seconds\": " << norm_on
        << ", \"norm_off_seconds\": " << norm_off
        << ", \"norm_on_snapshots_per_sec\": "
        << SafeRatio(config.snapshots, norm_on)
        << ", \"norm_off_snapshots_per_sec\": "
        << SafeRatio(config.snapshots, norm_off)
        << ", \"norm_speedup\": " << SafeRatio(norm_off, norm_on)
        << ", \"intersections\": " << r.on_intersections
        << ", \"companions\": " << r.companions
        << ", \"identical_counters\": "
        << (r.identical_counters ? "true" : "false") << "}"
        << (i + 1 < e2e.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"incremental\": [\n";
  for (size_t i = 0; i < incremental.size(); ++i) {
    const IncrementalResult& r = incremental[i];
    const int64_t touched = r.cluster_reuse + r.cluster_dirty;
    out << "    {\"algorithm\": \"" << r.algorithm << "\""
        << ", \"objects\": " << coherent_options.num_objects
        << ", \"snapshots\": " << coherent_options.num_snapshots
        << ", \"full_total_seconds\": " << r.full_total_seconds
        << ", \"incremental_total_seconds\": " << r.inc_total_seconds
        << ", \"total_speedup\": "
        << SafeRatio(r.full_total_seconds, r.inc_total_seconds)
        << ", \"full_cluster_seconds\": " << r.full_cluster_seconds
        << ", \"incremental_cluster_seconds\": " << r.inc_cluster_seconds
        << ", \"cluster_speedup\": "
        << SafeRatio(r.full_cluster_seconds, r.inc_cluster_seconds)
        << ", \"cluster_reuse\": " << r.cluster_reuse
        << ", \"cluster_dirty\": " << r.cluster_dirty
        << ", \"cluster_full_rebuilds\": " << r.cluster_full_rebuilds
        << ", \"reuse_ratio\": "
        << SafeRatio(static_cast<double>(r.cluster_reuse),
                     static_cast<double>(touched))
        << ", \"identical_products\": "
        << (r.identical_products ? "true" : "false") << "}"
        << (i + 1 < incremental.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"sharded\": [\n";
  for (size_t i = 0; i < sharded.size(); ++i) {
    const ShardedResult& r = sharded[i];
    const ShardedResult& base = sharded[i / 4 * 4];  // scenario's shards=1
    out << "    {\"scenario\": \"" << r.scenario << "\""
        << ", \"algorithm\": \"SC\""
        << ", \"shards\": " << r.shards
        << ", \"objects\": " << r.objects
        << ", \"snapshots\": " << config.snapshots
        << ", \"seconds\": " << r.seconds
        << ", \"snapshots_per_sec\": " << SafeRatio(config.snapshots, r.seconds)
        << ", \"speedup_vs_1\": " << SafeRatio(base.seconds, r.seconds)
        << ", \"cluster_seconds\": " << r.cluster_seconds
        << ", \"cluster_speedup_vs_1\": "
        << SafeRatio(base.cluster_seconds, r.cluster_seconds)
        << ", \"route_seconds\": " << r.route_seconds
        << ", \"work_seconds\": " << r.work_seconds
        << ", \"merge_seconds\": " << r.merge_seconds
        << ", \"distance_ops\": " << r.distance_ops
        << ", \"halo_objects\": " << r.halo_objects
        << ", \"halo_peak\": " << r.halo_peak
        << ", \"companions\": " << r.companions
        << ", \"identical_products\": "
        << (r.identical_products ? "true" : "false") << "}"
        << (i + 1 < sharded.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"soa\": {\n";
  out << "    \"micro\": {\n";
  out << "      \"scalar_ns_per_lane\": " << eps_micro.scalar_ns << ",\n";
  out << "      \"batch_ns_per_lane\": " << eps_micro.batch_ns << ",\n";
  out << "      \"batch_speedup\": "
      << SafeRatio(eps_micro.scalar_ns, eps_micro.batch_ns) << ",\n";
  out << "      \"gather_ns_per_lane\": " << eps_micro.gather_ns << ",\n";
  out << "      \"gather_speedup\": "
      << SafeRatio(eps_micro.scalar_ns, eps_micro.gather_ns) << ",\n";
  out << "      \"checksums_match\": "
      << (eps_micro.checksum_scalar == eps_micro.checksum_batch &&
                  eps_micro.checksum_scalar == eps_micro.checksum_gather
              ? "true"
              : "false")
      << "\n    },\n";
  out << "    \"e2e\": [\n";
  for (size_t i = 0; i < soa.size(); ++i) {
    const SoAResult& r = soa[i];
    out << "      {\"scenario\": \"" << r.scenario << "\""
        << ", \"algorithm\": \"" << r.algorithm << "\""
        << ", \"objects\": " << r.objects
        << ", \"snapshots\": " << config.snapshots
        << ", \"soa_on_seconds\": " << r.on_total_seconds
        << ", \"soa_off_seconds\": " << r.off_total_seconds
        << ", \"total_speedup\": "
        << SafeRatio(r.off_total_seconds, r.on_total_seconds)
        << ", \"soa_on_cluster_seconds\": " << r.on_cluster_seconds
        << ", \"soa_off_cluster_seconds\": " << r.off_cluster_seconds
        << ", \"cluster_speedup\": "
        << SafeRatio(r.off_cluster_seconds, r.on_cluster_seconds)
        << ", \"soa_on_eps_filter_seconds\": " << r.on_eps_filter_seconds
        << ", \"soa_off_eps_filter_seconds\": " << r.off_eps_filter_seconds
        << ", \"eps_filter_speedup\": "
        << SafeRatio(r.off_eps_filter_seconds, r.on_eps_filter_seconds)
        << ", \"distance_ops\": " << r.on_distance_ops
        << ", \"soa_batches\": " << r.soa_batches
        << ", \"soa_lanes\": " << r.soa_lanes
        << ", \"companions\": " << r.companions
        << ", \"identical_products\": "
        << (r.identical_products ? "true" : "false") << "}"
        << (i + 1 < soa.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";
  // Registry JSON is itself a complete object ending in '\n'; embed it as
  // the final member.
  out << "  \"stage_metrics\": " << StageMetricsJson(params, data.stream);
  out << "}\n";

  // Smoke contract: neither the kernels, the incremental clustering
  // layer, nor the sharded C-step may change any counted work or any
  // product.
  bool ok = micro.checksum_merge == micro.checksum_bitset &&
            scan.checksum_plain == scan.checksum_prefilter;
  for (const E2eResult& r : e2e) ok = ok && r.identical_counters;
  for (const IncrementalResult& r : incremental) {
    ok = ok && r.identical_products;
  }
  for (const ShardedResult& r : sharded) ok = ok && r.identical_products;
  ok = ok && eps_micro.checksum_scalar == eps_micro.checksum_batch &&
       eps_micro.checksum_scalar == eps_micro.checksum_gather;
  for (const SoAResult& r : soa) ok = ok && r.identical_products;
  if (!ok) {
    std::cerr << "FAIL: kernel and merge paths disagree\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tcomp

int main(int argc, char** argv) { return tcomp::Main(argc, argv); }
