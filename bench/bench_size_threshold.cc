// Reproduces Fig. 16 (a) time and (b) space vs. the companion size
// threshold δs ∈ [5, 40] on dataset D3, other parameters at defaults.
//
// Paper result: larger δs prunes more candidates per snapshot — space
// drops sharply and time falls for CI/SC/BU; TC is flat (it has no δs);
// SW benefits only weakly (object-growth prunes on size, but mining cost
// is dominated by support computation).

#include <iostream>

#include "bench/bench_common.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 16", "time & space vs size threshold (D3)", config);

  Dataset d3 = MakeSyntheticD3(config.d3_snapshots);
  TablePrinter time_table(
      {"delta_s", "CI", "SC", "BU", "SW", "TC"});
  TablePrinter space_table(
      {"delta_s", "CI", "SC", "BU", "SW"});

  // TC ignores δs entirely: run it once and reuse (as the paper's flat
  // line shows).
  RunResult tc =
      RunTraClusBaseline(TraClusParamsFrom(d3.default_params), d3.stream);

  for (int delta_s : {5, 10, 15, 20, 25, 30, 40}) {
    DiscoveryParams params = d3.default_params;
    params.size_threshold = delta_s;
    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, params, d3.stream);
    RunResult sc =
        RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d3.stream);
    RunResult bu =
        RunStreamingAlgorithm(Algorithm::kBuddy, params, d3.stream);
    RunResult sw = RunSwarmBaseline(SwarmParamsFrom(params), d3.stream);

    time_table.AddRow({std::to_string(delta_s),
                       FormatDouble(ci.wall_seconds, 3) + "s",
                       FormatDouble(sc.wall_seconds, 3) + "s",
                       FormatDouble(bu.wall_seconds, 3) + "s",
                       FormatDouble(sw.wall_seconds, 3) + "s",
                       FormatDouble(tc.wall_seconds, 3) + "s"});
    space_table.AddRow({std::to_string(delta_s),
                        FormatCount(ci.space_cost),
                        FormatCount(sc.space_cost),
                        FormatCount(bu.space_cost),
                        FormatCount(sw.space_cost)});
  }

  std::cout << "\nFig. 16(a) — running time vs delta_s\n";
  time_table.Print();
  std::cout << "\nFig. 16(b) — space cost vs delta_s\n";
  space_table.Print();
  std::cout << "\nExpected shape: CI/SC/BU time and space fall as delta_s "
               "grows; TC flat; BU lowest.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
