// Reproduces Fig. 23: time (a) and space (b) vs. the inactive-period
// threshold (0–6 snapshots) for the streaming algorithms on D3 with
// randomly dropped reports. SW and TC are unaffected by this parameter
// (paper Section VI) and are omitted, as in the figure.
//
// Paper result: larger inactive periods keep temporarily-absent objects
// inside candidates, so fewer candidates get pruned — space grows, and
// the larger candidate set costs more intersection time.

#include <iostream>

#include "bench/bench_common.h"
#include "data/degrade.h"
#include "stream/inactive_period.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 23", "time & space vs inactive period (D3, 10% drops)",
         config);

  Dataset d3 = MakeSyntheticD3(config.d3_snapshots);
  SnapshotStream degraded = DropReports(d3.stream, 0.10, /*seed=*/17);

  TablePrinter time_table({"inactive", "CI", "SC", "BU"});
  TablePrinter space_table({"inactive", "CI", "SC", "BU"});
  TablePrinter ops_table({"inactive", "CI", "SC", "BU"});

  for (int inactive : {0, 1, 2, 3, 4, 5, 6}) {
    InactivePeriodFiller filler(inactive);
    SnapshotStream filled = filler.FillStream(degraded);

    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, d3.default_params, filled);
    RunResult sc = RunStreamingAlgorithm(Algorithm::kSmartClosed,
                                         d3.default_params, filled);
    RunResult bu =
        RunStreamingAlgorithm(Algorithm::kBuddy, d3.default_params, filled);

    time_table.AddRow({std::to_string(inactive),
                       FormatDouble(ci.wall_seconds, 3) + "s",
                       FormatDouble(sc.wall_seconds, 3) + "s",
                       FormatDouble(bu.wall_seconds, 3) + "s"});
    space_table.AddRow({std::to_string(inactive),
                        FormatCount(ci.space_cost),
                        FormatCount(sc.space_cost),
                        FormatCount(bu.space_cost)});
    ops_table.AddRow({std::to_string(inactive),
                      FormatCount(ci.stats.intersections),
                      FormatCount(sc.stats.intersections),
                      FormatCount(bu.stats.intersections)});
  }

  std::cout << "\nFig. 23(a) — running time vs inactive period\n";
  time_table.Print();
  std::cout << "\nFig. 23(a') — intersection operations (deterministic "
               "time proxy)\n";
  ops_table.Print();
  std::cout << "\nFig. 23(b) — space cost vs inactive period\n";
  space_table.Print();
  std::cout << "\nExpected shape (paper): space and time grow with the "
               "inactive period.\nMeasured: CI grows as in the paper; for "
               "SC/BU the retention effect competes\nwith fills healing "
               "candidate fragmentation (see EXPERIMENTS.md).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
