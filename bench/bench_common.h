#ifndef TCOMP_BENCH_BENCH_COMMON_H_
#define TCOMP_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "data/synthetic_gen.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "util/flags.h"

namespace tcomp {
namespace bench {

/// Shared flags for every bench binary:
///   --snapshots N   override the synthetic datasets' stream length
///   --full          paper-scale stream lengths (D3/D4: 1,440 snapshots)
///   --quick         tiny streams for smoke runs
struct BenchConfig {
  int d1_snapshots = kD1Snapshots;   // 50 — always paper scale
  int d2_snapshots = kD2Snapshots;   // 180 — always paper scale
  int d3_snapshots = 240;            // reduced from 1,440 (see DESIGN.md §3)
  int d4_snapshots = 60;             // reduced from 1,440
  bool skip_slow = false;            // drop CI/SW from the largest runs
};

inline BenchConfig ParseBenchConfig(int argc, const char* const* argv) {
  FlagParser flags;
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
  }
  BenchConfig config;
  if (flags.GetBool("full", false)) {
    config.d3_snapshots = kD3Snapshots;
    config.d4_snapshots = kD4Snapshots;
  }
  if (flags.GetBool("quick", false)) {
    config.d2_snapshots = 60;
    config.d3_snapshots = 60;
    config.d4_snapshots = 20;
  }
  if (flags.Has("snapshots")) {
    int n = flags.GetInt("snapshots", 0);
    config.d3_snapshots = n;
    config.d4_snapshots = n;
  }
  config.skip_slow = flags.GetBool("skip-slow", false);
  return config;
}

/// Prints the standard bench banner.
inline void Banner(const std::string& figure, const std::string& what,
                   const BenchConfig& config) {
  std::cout << "==============================================\n"
            << "Reproduces paper " << figure << ": " << what << "\n"
            << "Snapshots: D1=" << config.d1_snapshots
            << " D2=" << config.d2_snapshots
            << " D3=" << config.d3_snapshots
            << " D4=" << config.d4_snapshots
            << "  (use --full for paper scale)\n"
            << "==============================================\n";
}

}  // namespace bench
}  // namespace tcomp

#endif  // TCOMP_BENCH_BENCH_COMMON_H_
