// Google-benchmark microbenchmarks for the hot kernels: snapshot
// clustering (plain O(n²) DBSCAN vs grid DBSCAN vs buddy-based), buddy
// maintenance, and the sorted-set intersection primitives.

#include <benchmark/benchmark.h>

#include "core/buddy.h"
#include "core/buddy_clustering.h"
#include "core/dbscan.h"
#include "tests/test_util.h"
#include "util/dense_bitset.h"
#include "util/random.h"
#include "util/set_signature.h"
#include "util/sorted_ops.h"

namespace tcomp {
namespace {

Snapshot MakeClusteredSnapshot(int n) {
  Pcg32 rng(7);
  int clusters = n / 25;
  return testing_util::ClusteredSnapshot(clusters, 20, n - clusters * 20,
                                         std::sqrt(n) * 40.0, 1.5, rng);
}

void BM_Dbscan(benchmark::State& state) {
  Snapshot s = MakeClusteredSnapshot(static_cast<int>(state.range(0)));
  DbscanParams params{6.0, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(s, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dbscan)->Range(100, 4000)->Complexity(benchmark::oNSquared);

void BM_DbscanGrid(benchmark::State& state) {
  Snapshot s = MakeClusteredSnapshot(static_cast<int>(state.range(0)));
  DbscanParams params{6.0, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DbscanGrid(s, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DbscanGrid)->Range(100, 4000);

void BM_BuddyClustering(benchmark::State& state) {
  Snapshot s = MakeClusteredSnapshot(static_cast<int>(state.range(0)));
  DbscanParams params{6.0, 4};
  BuddySet buddies(3.0);
  buddies.Initialize(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuddyBasedClustering(s, buddies, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuddyClustering)->Range(100, 4000);

void BM_BuddyMaintenance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Snapshot s = MakeClusteredSnapshot(n);
  BuddySet buddies(3.0);
  buddies.Initialize(s);
  // Drift the population a little between updates.
  Pcg32 rng(13);
  std::vector<ObjectPosition> positions;
  for (size_t i = 0; i < s.size(); ++i) {
    positions.push_back(ObjectPosition{s.id(i), s.pos(i)});
  }
  for (auto _ : state) {
    for (ObjectPosition& p : positions) {
      p.pos.x += rng.NextDouble(-0.5, 0.5);
      p.pos.y += rng.NextDouble(-0.5, 0.5);
    }
    Snapshot next(positions, 1.0);
    buddies.Update(next, nullptr);
    benchmark::DoNotOptimize(buddies.buddies().size());
  }
}
BENCHMARK(BM_BuddyMaintenance)->Range(100, 4000);

void BM_SortedIntersect(benchmark::State& state) {
  Pcg32 rng(3);
  std::vector<ObjectId> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.NextBounded(100000));
    b.push_back(rng.NextBounded(100000));
  }
  SortUnique(&a);
  SortUnique(&b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersect(a, b));
  }
}
BENCHMARK(BM_SortedIntersect)->Range(16, 4096);

// Dense-id counterpart of BM_SortedIntersect: the word-parallel bitset
// probe against the sorted-merge path over the same sets. The bitset is
// built once per candidate in the real I-step loop, so SetSparse/
// ClearSparse cost is measured separately below.
void BM_DenseBitsetIntersect(benchmark::State& state) {
  const uint32_t universe = 4 * static_cast<uint32_t>(state.range(0));
  Pcg32 rng(3);
  std::vector<ObjectId> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.NextBounded(universe));
    b.push_back(rng.NextBounded(universe));
  }
  SortUnique(&a);
  SortUnique(&b);
  DenseBitset members(universe);
  members.SetSparse(a);
  std::vector<ObjectId> out;
  for (auto _ : state) {
    IntersectInto(b, members, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_DenseBitsetIntersect)->Range(16, 4096);

void BM_DenseBitsetSetClearSparse(benchmark::State& state) {
  const uint32_t universe = 4 * static_cast<uint32_t>(state.range(0));
  Pcg32 rng(5);
  std::vector<ObjectId> a;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(rng.NextBounded(universe));
  }
  SortUnique(&a);
  DenseBitset members(universe);
  for (auto _ : state) {
    members.SetSparse(a);
    members.ClearSparse(a);
    benchmark::DoNotOptimize(members.universe());
  }
}
BENCHMARK(BM_DenseBitsetSetClearSparse)->Range(16, 4096);

void BM_SignaturePrefilter(benchmark::State& state) {
  Pcg32 rng(9);
  std::vector<ObjectId> outer, inner;
  for (int i = 0; i < state.range(0); ++i) {
    outer.push_back(rng.NextBounded(100000));
    inner.push_back(rng.NextBounded(100000));
  }
  SortUnique(&outer);
  SortUnique(&inner);
  const SetSignature outer_sig = SetSignature::Of(outer);
  const SetSignature inner_sig = SetSignature::Of(inner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inner_sig.MaybeSubsetOf(outer_sig));
  }
}
BENCHMARK(BM_SignaturePrefilter)->Range(16, 4096);

void BM_BuddyInitialize(benchmark::State& state) {
  Snapshot s = MakeClusteredSnapshot(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BuddySet buddies(3.0);
    buddies.Initialize(s);
    benchmark::DoNotOptimize(buddies.buddies().size());
  }
}
BENCHMARK(BM_BuddyInitialize)->Range(100, 4000);

}  // namespace
}  // namespace tcomp

BENCHMARK_MAIN();
