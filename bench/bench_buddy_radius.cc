// Reproduces Fig. 18: (a) buddy number and unchanged-buddy fraction vs.
// the average buddy size |b|, and (b) running time of buddy-based
// clustering (B-Cluster), full BU, and plain DBSCAN vs. |b| — all driven
// by sweeping the buddy radius threshold δγ from ε/10 to ε/2 on D3.
//
// Paper result: buddy count is inversely proportional to |b|; the
// unchanged fraction falls as buddies grow; BU and B-Cluster get *faster*
// with larger |b| (maintenance is O(n + m²)); B-Cluster beats DBSCAN once
// |b| ≳ 3. Recommended setting: δγ = ε/2.

#include <iostream>

#include "bench/bench_common.h"
#include "core/buddy_discovery.h"
#include "core/dbscan.h"
#include "util/timer.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 18", "buddy statistics & clustering time vs buddy size",
         config);

  Dataset d3 = MakeSyntheticD3(config.d3_snapshots);
  const DbscanParams cluster = d3.default_params.cluster;

  // Plain DBSCAN reference (the paper's horizontal line in Fig. 18(b)).
  Timer dbscan_timer;
  dbscan_timer.Start();
  for (const Snapshot& s : d3.stream) {
    Dbscan(s, cluster, nullptr);
  }
  dbscan_timer.Stop();

  TablePrinter table({"gamma", "avg |b|", "buddies", "unchanged",
                      "unchanged%", "B-Cluster", "BU total", "DBSCAN"});

  for (double frac : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    DiscoveryParams params = d3.default_params;
    params.buddy_radius = cluster.epsilon * frac;

    BuddyDiscoverer bu(params);
    for (const Snapshot& s : d3.stream) {
      bu.ProcessSnapshot(s, nullptr);
    }
    const DiscoveryStats& stats = bu.stats();

    double avg_size = stats.average_buddy_size();
    double buddies_per_snapshot =
        static_cast<double>(stats.buddies_total) /
        static_cast<double>(stats.snapshots);
    // Unchanged fraction over post-initialization snapshots.
    double unchanged =
        stats.buddies_total == 0
            ? 0.0
            : static_cast<double>(stats.buddies_unchanged) /
                  static_cast<double>(stats.buddies_total);
    double bcluster_seconds =
        stats.maintain_seconds + stats.cluster_seconds;

    double unchanged_per_snapshot =
        static_cast<double>(stats.buddies_unchanged) /
        static_cast<double>(stats.snapshots);
    table.AddRow({"eps*" + FormatDouble(frac, 1),
                  FormatDouble(avg_size, 2),
                  FormatDouble(buddies_per_snapshot, 0),
                  FormatDouble(unchanged_per_snapshot, 0),
                  FormatPercent(unchanged),
                  FormatDouble(bcluster_seconds, 3) + "s",
                  FormatDouble(stats.total_seconds(), 3) + "s",
                  FormatDouble(dbscan_timer.Seconds(), 3) + "s"});
  }

  std::cout << "\nFig. 18 — buddy radius sweep on D3 (B-Cluster = M-step "
               "+ C-step)\n";
  table.Print();
  std::cout << "\nExpected shape: buddy count inversely proportional to "
               "avg |b|; the *number* of\nunchanged buddies falls as |b| "
               "grows (Fig. 18a plots counts); B-Cluster and BU\nget "
               "faster with larger |b| and beat DBSCAN once |b| >~ 2-3. "
               "Recommended:\ngamma = eps/2 (the last row).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
