// Reproduces Fig. 20: precision (a) and recall (b) of companion discovery
// vs. the size threshold δs on the military dataset D2, whose 30-team
// partition is the ground truth.
//
// Paper result: BU and SC score identically (same outputs); they beat SW
// by ~20 precision points and CI by ~40; SW has 100% recall (swarms are a
// superset of companions) but more false positives; precision rises with
// δs for all four, and recall drops once δs exceeds the smallest teams
// (>25). TC is flat and poor — direction-based clusters are not
// companions.

#include <iostream>

#include "bench/bench_common.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 20", "precision & recall vs size threshold (D2)", config);

  Dataset d2 = MakeMilitaryD2(config.d2_snapshots);
  TablePrinter precision_table(
      {"delta_s", "BU", "SC", "SW", "CI", "TC"});
  TablePrinter recall_table({"delta_s", "BU", "SC", "SW", "CI", "TC"});

  RunResult tc =
      RunTraClusBaseline(TraClusParamsFrom(d2.default_params), d2.stream);
  EffectivenessResult tc_score =
      ScoreCompanions(tc.companions, d2.ground_truth);

  for (int delta_s : {5, 10, 15, 20, 25, 30}) {
    DiscoveryParams params = d2.default_params;
    params.size_threshold = delta_s;

    RunResult bu =
        RunStreamingAlgorithm(Algorithm::kBuddy, params, d2.stream);
    RunResult sc =
        RunStreamingAlgorithm(Algorithm::kSmartClosed, params, d2.stream);
    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, params, d2.stream);
    RunResult sw = RunSwarmBaseline(SwarmParamsFrom(params), d2.stream);

    EffectivenessResult bu_s = ScoreCompanions(bu.companions,
                                               d2.ground_truth);
    EffectivenessResult sc_s = ScoreCompanions(sc.companions,
                                               d2.ground_truth);
    EffectivenessResult ci_s = ScoreCompanions(ci.companions,
                                               d2.ground_truth);
    EffectivenessResult sw_s = ScoreCompanions(sw.companions,
                                               d2.ground_truth);

    precision_table.AddRow({std::to_string(delta_s),
                            FormatPercent(bu_s.precision),
                            FormatPercent(sc_s.precision),
                            FormatPercent(sw_s.precision),
                            FormatPercent(ci_s.precision),
                            FormatPercent(tc_score.precision)});
    recall_table.AddRow({std::to_string(delta_s),
                         FormatPercent(bu_s.recall),
                         FormatPercent(sc_s.recall),
                         FormatPercent(sw_s.recall),
                         FormatPercent(ci_s.recall),
                         FormatPercent(tc_score.recall)});
  }

  std::cout << "\nFig. 20(a) — precision vs delta_s\n";
  precision_table.Print();
  std::cout << "\nFig. 20(b) — recall vs delta_s\n";
  recall_table.Print();
  std::cout << "\nExpected shape: BU = SC > SW > CI in precision, all "
               "rising with delta_s;\nrecall 100% until delta_s exceeds "
               "the smallest team (25), then drops; TC flat/poor.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
