// Reproduces Fig. 19: per-step running time of BU — the maintenance step
// (M-step, Algorithm 3), clustering step (C-step, Algorithm 4), and
// intersection step (I-step, Algorithm 5) — in absolute seconds and as a
// percentage of BU's total, on all four datasets.
//
// Paper result: the C-step is the cheapest of the three (<5% of total,
// versus DBSCAN's 40–50% share inside SC); BU spends an extra 10–15% on
// buddy maintenance to make the clustering almost free. The Lemma-3
// pruning rate (>80% in the paper) is printed alongside.

#include <iostream>

#include "bench/bench_common.h"
#include "core/buddy_discovery.h"

namespace tcomp {
namespace bench {
namespace {

void RunOne(const Dataset& dataset, TablePrinter* abs_table,
            TablePrinter* pct_table) {
  BuddyDiscoverer bu(dataset.default_params);
  for (const Snapshot& s : dataset.stream) {
    bu.ProcessSnapshot(s, nullptr);
  }
  const DiscoveryStats& st = bu.stats();
  double total = st.total_seconds();
  double prune_rate =
      st.buddy_pairs_checked == 0
          ? 0.0
          : static_cast<double>(st.buddy_pairs_pruned) /
                static_cast<double>(st.buddy_pairs_checked);

  abs_table->AddRow({dataset.name,
                     FormatDouble(st.maintain_seconds, 3) + "s",
                     FormatDouble(st.cluster_seconds, 3) + "s",
                     FormatDouble(st.intersect_seconds, 3) + "s",
                     FormatDouble(total, 3) + "s"});
  pct_table->AddRow({dataset.name,
                     FormatPercent(st.maintain_seconds / total),
                     FormatPercent(st.cluster_seconds / total),
                     FormatPercent(st.intersect_seconds / total),
                     FormatPercent(prune_rate)});
}

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 19", "time per BU step (M/C/I) on D1-D4", config);

  TablePrinter abs_table(
      {"dataset", "M-step", "C-step", "I-step", "total"});
  TablePrinter pct_table(
      {"dataset", "M-step%", "C-step%", "I-step%", "Lemma3 prune"});

  RunOne(MakeTaxiD1(config.d1_snapshots), &abs_table, &pct_table);
  RunOne(MakeMilitaryD2(config.d2_snapshots), &abs_table, &pct_table);
  RunOne(MakeSyntheticD3(config.d3_snapshots), &abs_table, &pct_table);
  RunOne(MakeSyntheticD4(config.d4_snapshots), &abs_table, &pct_table);

  std::cout << "\nFig. 19(a) — absolute step time\n";
  abs_table.Print();
  std::cout << "\nFig. 19(b) — step share of BU total (+ Lemma-3 pruning "
               "rate)\n";
  pct_table.Print();
  std::cout << "\nExpected shape: C-step is the smallest share (paper: "
               "<5%); M-step ~10-15%;\nLemma 3 prunes >80% of buddy "
               "pairs.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
