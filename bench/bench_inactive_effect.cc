// Reproduces Fig. 24: precision (a) and recall (b) vs. the inactive-
// period threshold on D2 with 10% of the reports randomly removed
// (the paper's missing-data experiment, Section VI).
//
// Paper result: precision falls as the inactive period grows (filled-in
// members produce more false-positive variants) while recall rises — with
// a tolerant inactive period BU/SC recover ~95% of the true companions
// despite 10% missing data.
//
// Both the paper-style one-to-one score and the coverage score (see
// eval/metrics.h) are printed; under missing data the one-to-one score
// punishes every near-variant of a team, so its precision drops much more
// steeply — same shape, steeper slope.

#include <iostream>

#include "bench/bench_common.h"
#include "data/degrade.h"
#include "stream/inactive_period.h"

namespace tcomp {
namespace bench {
namespace {

int Main(int argc, const char* const* argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  Banner("Fig. 24",
         "precision & recall vs inactive period (D2, 10% missing)",
         config);

  Dataset d2 = MakeMilitaryD2(config.d2_snapshots);
  SnapshotStream degraded = DropReports(d2.stream, 0.10, /*seed=*/23);

  TablePrinter table({"inactive", "BU prec", "BU rec", "SC prec", "SC rec",
                      "CI prec", "CI rec", "BU cov-prec"});

  for (int inactive : {0, 1, 2, 3, 4, 5, 6}) {
    InactivePeriodFiller filler(inactive);
    SnapshotStream filled = filler.FillStream(degraded);

    RunResult bu = RunStreamingAlgorithm(Algorithm::kBuddy,
                                         d2.default_params, filled);
    RunResult sc = RunStreamingAlgorithm(Algorithm::kSmartClosed,
                                         d2.default_params, filled);
    RunResult ci = RunStreamingAlgorithm(
        Algorithm::kClusteringIntersection, d2.default_params, filled);

    EffectivenessResult bu_s =
        ScoreCompanions(bu.companions, d2.ground_truth);
    EffectivenessResult sc_s =
        ScoreCompanions(sc.companions, d2.ground_truth);
    EffectivenessResult ci_s =
        ScoreCompanions(ci.companions, d2.ground_truth);
    EffectivenessResult bu_cov =
        ScoreCompanionsCoverage(bu.companions, d2.ground_truth, 0.35);

    table.AddRow({std::to_string(inactive),
                  FormatPercent(bu_s.precision), FormatPercent(bu_s.recall),
                  FormatPercent(sc_s.precision), FormatPercent(sc_s.recall),
                  FormatPercent(ci_s.precision), FormatPercent(ci_s.recall),
                  FormatPercent(bu_cov.precision)});
  }

  std::cout << "\nFig. 24 — effectiveness vs inactive period (10% of "
               "reports dropped)\n";
  table.Print();
  std::cout << "\nExpected shape (paper): recall rises, precision falls, "
               "BU = SC throughout.\nMeasured: the falling-precision trend "
               "appears in the coverage score (last\ncolumn) — tolerant "
               "fills admit wrong memberships. The one-to-one score\n"
               "instead *rises* because fills heal outage-fragment "
               "variants, which that\nmetric counts as false positives "
               "(see EXPERIMENTS.md).\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tcomp

int main(int argc, char** argv) {
  return tcomp::bench::Main(argc, argv);
}
